// Service-layer tests: lilsm_server's epoll loop + worker handoff and the
// lilsm::Client handle, exercised over real unix-domain sockets. Covers
// the request surface (Get/MultiGet/Write/snapshots/Ping), raw-socket
// protocol abuse (garbage, bad CRC, oversized and truncated frames must
// poison only the offending connection), snapshot release on disconnect,
// and graceful shutdown: every acknowledged write survives a server stop,
// DB close, and WAL-replaying reopen — even when the client is killed
// right after the ack.
#include "server/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "lsm/db.h"
#include "server/wire_protocol.h"
#include "tests/test_util.h"
#include "util/coding.h"
#include "util/env.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 32;

DBOptions ServerDbOptions() {
  DBOptions options;
  options.write_buffer_size = 64 << 10;
  options.sstable_target_size = 32 << 10;
  options.l0_compaction_trigger = 2;
  options.value_size = kValueSize;  // flushed tables need fixed-size values
  options.group_commit = true;      // concurrent client writes coalesce
  return options;
}

/// Pads to exactly kValueSize — anything that reaches a flushed SSTable
/// must respect the segmented format's fixed value geometry.
std::string FixedValue(const std::string& tag) {
  std::string value = tag;
  value.resize(kValueSize, '.');
  return value;
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions server_options = ServerOptions(),
                   DBOptions db_options = ServerDbOptions()) {
    StopServer();
    ASSERT_LILSM_OK(DB::Open(db_options, dir_.path() + "/db", &db_));
    if (server_options.socket_path.empty()) {
      server_options.socket_path = dir_.file("sock");
    }
    ASSERT_LILSM_OK(Server::Start(db_.get(), server_options, &server_));
  }

  void StopServer() {
    server_.reset();
    db_.reset();
  }

  std::unique_ptr<Client> MustConnect() {
    std::unique_ptr<Client> client;
    EXPECT_LILSM_OK(Client::Connect(server_->socket_path(), &client));
    return client;
  }

  /// Raw blocking socket to the server, for protocol-abuse tests.
  int RawConnect() {
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd, 0);
    struct ::sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, server_->socket_path().c_str(),
                server_->socket_path().size());
    EXPECT_EQ(::connect(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return fd;
  }

  static ssize_t SendNoSigpipe(int fd, const void* buf, size_t n) {
    return ::send(fd, buf, n, MSG_NOSIGNAL);
  }

  static void SendAll(int fd, const std::string& bytes) {
    ASSERT_LILSM_OK(
        FullyWrite(fd, bytes.data(), bytes.size(), &SendNoSigpipe));
  }

  /// Reads until the server closes the connection; returns what arrived.
  static std::string ReadUntilEof(int fd) {
    std::string got;
    char buf[4096];
    while (true) {
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) break;
      got.append(buf, static_cast<size_t>(r));
    }
    return got;
  }

  /// Expects exactly one kErrorResponse frame followed by EOF and
  /// returns the carried status.
  static Status ExpectErrorThenEof(int fd) {
    std::string got = ReadUntilEof(fd);
    wire::Frame frame;
    EXPECT_EQ(wire::DecodeFrame(&got, wire::kMaxPayloadBytes, &frame),
              wire::DecodeResult::kFrame);
    EXPECT_TRUE(got.empty()) << "trailing bytes after the error frame";
    EXPECT_EQ(frame.type, wire::MessageType::kErrorResponse);
    wire::StatusResponse resp;
    EXPECT_TRUE(resp.DecodeFrom(Slice(frame.body)));
    return resp.status;
  }

  void WaitForActiveConnections(int want) {
    Env* env = Env::Default();
    const uint64_t deadline = env->NowNanos() + uint64_t{5} * 1'000'000'000;
    while (server_->connections_active() != want &&
           env->NowNanos() < deadline) {
      std::this_thread::yield();
    }
    EXPECT_EQ(server_->connections_active(), want);
  }

  ScratchDir dir_{"server"};
  std::unique_ptr<DB> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, StartStopIsIdempotent) {
  StartServer();
  EXPECT_EQ(server_->connections_active(), 0);
  server_->Stop();
  server_->Stop();  // second stop is a no-op
  StopServer();
}

TEST_F(ServerTest, RejectsBadOptions) {
  ServerOptions options;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());  // empty path
  options.socket_path = std::string(200, 'p');
  EXPECT_TRUE(options.Validate().IsInvalidArgument());  // > sun_path
  options.socket_path = "/tmp/ok.sock";
  options.num_workers = 0;
  EXPECT_TRUE(options.Validate().IsInvalidArgument());
}

TEST_F(ServerTest, BasicOpsRoundTrip) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_LILSM_OK(client->Ping());

  ASSERT_LILSM_OK(client->Put(1, "one"));
  ASSERT_LILSM_OK(client->Put(2, "two"));
  std::string value;
  ASSERT_LILSM_OK(client->Get(1, &value));
  EXPECT_EQ(value, "one");
  EXPECT_TRUE(client->Get(99, &value).IsNotFound());

  ASSERT_LILSM_OK(client->Delete(1));
  EXPECT_TRUE(client->Get(1, &value).IsNotFound());

  // A WriteBatch applies atomically server-side.
  WriteBatch batch;
  batch.Put(10, "ten");
  batch.Put(11, "eleven");
  batch.Delete(2);
  ASSERT_LILSM_OK(client->Write(batch));

  const std::vector<Key> keys = {10, 11, 2, 99};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_LILSM_OK(client->MultiGet(keys, &values, &statuses));
  ASSERT_EQ(statuses.size(), keys.size());
  EXPECT_LILSM_OK(statuses[0]);
  EXPECT_EQ(values[0], "ten");
  EXPECT_EQ(values[1], "eleven");
  EXPECT_TRUE(statuses[2].IsNotFound());
  EXPECT_TRUE(statuses[3].IsNotFound());
}

TEST_F(ServerTest, LargeMultiGetBatchOneFrameEachWay) {
  // Variable-length values: keep everything in the memtable (no flush —
  // flushed tables require fixed-size values).
  DBOptions db_options = ServerDbOptions();
  db_options.write_buffer_size = 4 << 20;
  StartServer(ServerOptions(), db_options);
  std::unique_ptr<Client> client = MustConnect();
  // Values large enough that the response spans many socket buffers,
  // exercising the partial-write path in the event loop.
  const std::string big(8 << 10, 'v');
  std::vector<Key> keys;
  for (Key k = 0; k < 512; k++) {
    ASSERT_LILSM_OK(client->Put(k, Slice(big.data(), (k % 64) + 1)));
    keys.push_back(k);
  }
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_LILSM_OK(client->MultiGet(keys, &values, &statuses));
  for (Key k = 0; k < 512; k++) {
    ASSERT_LILSM_OK(statuses[k]);
    ASSERT_EQ(values[k].size(), (k % 64) + 1) << "key " << k;
  }
}

TEST_F(ServerTest, SnapshotPinsAPointInTimeView) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_LILSM_OK(client->Put(5, "before"));

  uint64_t snap_id = 0;
  SequenceNumber seq = 0;
  ASSERT_LILSM_OK(client->NewSnapshot(&snap_id, &seq));
  EXPECT_GT(snap_id, 0u);
  EXPECT_GT(seq, 0u);

  ASSERT_LILSM_OK(client->Put(5, "after"));
  ASSERT_LILSM_OK(client->Put(6, "new key"));

  ClientReadOptions at_snap;
  at_snap.snapshot_id = snap_id;
  std::string value;
  ASSERT_LILSM_OK(client->Get(at_snap, 5, &value));
  EXPECT_EQ(value, "before");
  EXPECT_TRUE(client->Get(at_snap, 6, &value).IsNotFound());
  ASSERT_LILSM_OK(client->Get(5, &value));
  EXPECT_EQ(value, "after");

  // MultiGet honors the snapshot too.
  const std::vector<Key> keys = {5, 6};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_LILSM_OK(client->MultiGet(at_snap, keys, &values, &statuses));
  EXPECT_EQ(values[0], "before");
  EXPECT_TRUE(statuses[1].IsNotFound());

  ASSERT_LILSM_OK(client->ReleaseSnapshot(snap_id));
  // Released (and never-issued) ids are per-request errors, not fatal.
  EXPECT_TRUE(client->ReleaseSnapshot(snap_id).IsInvalidArgument());
  EXPECT_TRUE(client->Get(at_snap, 5, &value).IsInvalidArgument());
  ASSERT_LILSM_OK(client->Ping());  // connection still healthy
}

TEST_F(ServerTest, SnapshotsAreConnectionScoped) {
  StartServer();
  std::unique_ptr<Client> alice = MustConnect();
  std::unique_ptr<Client> bob = MustConnect();
  ASSERT_LILSM_OK(alice->Put(1, "v"));
  uint64_t snap_id = 0;
  ASSERT_LILSM_OK(alice->NewSnapshot(&snap_id));
  // Bob cannot see (or release) Alice's snapshot.
  ClientReadOptions at_snap;
  at_snap.snapshot_id = snap_id;
  std::string value;
  EXPECT_TRUE(bob->Get(at_snap, 1, &value).IsInvalidArgument());
  EXPECT_TRUE(bob->ReleaseSnapshot(snap_id).IsInvalidArgument());
  ASSERT_LILSM_OK(alice->Get(at_snap, 1, &value));
}

TEST_F(ServerTest, DisconnectReleasesLeakedSnapshots) {
  StartServer();
  {
    std::unique_ptr<Client> client = MustConnect();
    ASSERT_LILSM_OK(client->Put(1, "v"));
    uint64_t ignored = 0;
    ASSERT_LILSM_OK(client->NewSnapshot(&ignored));
    ASSERT_LILSM_OK(client->NewSnapshot(&ignored));
    // Dropped without ReleaseSnapshot: the server must clean up.
  }
  WaitForActiveConnections(0);
  // A leaked snapshot would trip the DB's outstanding-snapshot check on
  // close; a clean StopServer proves the disconnect path released them.
  StopServer();
}

TEST_F(ServerTest, GarbageBytesGetOneErrorFrameThenClose) {
  StartServer();
  std::unique_ptr<Client> healthy = MustConnect();
  ASSERT_LILSM_OK(healthy->Put(1, "v"));

  // Junk that parses as a plausible length (32) followed by garbage: the
  // CRC check is what catches it.
  std::string garbage;
  PutFixed32(&garbage, 32);
  garbage.append(36, 'x');
  int fd = RawConnect();
  SendAll(fd, garbage);
  EXPECT_TRUE(ExpectErrorThenEof(fd).IsCorruption());
  ::close(fd);

  // The event loop and every other client survived.
  std::string value;
  ASSERT_LILSM_OK(healthy->Get(1, &value));
  EXPECT_EQ(value, "v");
}

TEST_F(ServerTest, CorruptCrcGetsErrorAndClose) {
  StartServer();
  std::string frame;
  wire::EncodeFrame(&frame, wire::MessageType::kPingRequest, 1, Slice());
  frame[frame.size() - 1] ^= 0x01;  // damage the payload under the CRC

  int fd = RawConnect();
  SendAll(fd, frame);
  EXPECT_TRUE(ExpectErrorThenEof(fd).IsCorruption());
  ::close(fd);
}

TEST_F(ServerTest, OversizedFrameRejectedBeforeBuffering) {
  ServerOptions options;
  options.max_frame_bytes = 4 << 10;
  StartServer(options);
  std::string header;
  PutFixed32(&header, 1u << 20);  // declares 1 MiB against a 4 KiB cap
  PutFixed32(&header, 0);
  int fd = RawConnect();
  SendAll(fd, header);
  EXPECT_TRUE(ExpectErrorThenEof(fd).IsInvalidArgument());
  ::close(fd);
}

TEST_F(ServerTest, UnknownMessageTypeGetsErrorAndClose) {
  StartServer();
  std::string frame;
  wire::EncodeFrame(&frame, static_cast<wire::MessageType>(42), 9, Slice());
  int fd = RawConnect();
  SendAll(fd, frame);
  EXPECT_TRUE(ExpectErrorThenEof(fd).IsInvalidArgument());
  ::close(fd);
}

TEST_F(ServerTest, TruncatedFrameThenDisconnectIsHarmless) {
  StartServer();
  std::string frame;
  wire::EncodeFrame(&frame, wire::MessageType::kPingRequest, 1, Slice());
  int fd = RawConnect();
  SendAll(fd, frame.substr(0, frame.size() / 2));
  WaitForActiveConnections(1);
  ::close(fd);  // vanish mid-frame
  WaitForActiveConnections(0);
  // Server still serves.
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_LILSM_OK(client->Ping());
}

TEST_F(ServerTest, MalformedBodyGetsErrorAndClose) {
  StartServer();
  std::unique_ptr<Client> healthy = MustConnect();
  // Valid frame, valid type, body too short for a GetRequest.
  std::string frame;
  wire::EncodeFrame(&frame, wire::MessageType::kGetRequest, 3, Slice("xy"));
  int fd = RawConnect();
  SendAll(fd, frame);
  EXPECT_TRUE(ExpectErrorThenEof(fd).IsInvalidArgument());
  ::close(fd);
  ASSERT_LILSM_OK(healthy->Ping());
}

TEST_F(ServerTest, MalformedWriteBatchIsAPerRequestError) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  // A structurally broken batch rep must be rejected before it touches
  // the WAL — but it is the client's own request, so the connection
  // survives.
  std::string body;
  body.push_back(0);                      // flags: no overrides
  body.append("short");                   // not even a batch header
  std::string frame;
  wire::EncodeFrame(&frame, wire::MessageType::kWriteRequest, 1, Slice(body));
  int fd = RawConnect();
  SendAll(fd, frame);
  std::string got;
  char buf[1024];
  // One response frame, connection stays open (poll for the frame).
  while (true) {
    wire::Frame response;
    std::string probe = got;
    if (wire::DecodeFrame(&probe, wire::kMaxPayloadBytes, &response) ==
        wire::DecodeResult::kFrame) {
      EXPECT_EQ(response.type, wire::MessageType::kWriteResponse);
      wire::StatusResponse resp;
      ASSERT_TRUE(resp.DecodeFrom(Slice(response.body)));
      EXPECT_TRUE(resp.status.IsInvalidArgument());
      break;
    }
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(r, 0);
    got.append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  ASSERT_LILSM_OK(client->Ping());
}

TEST_F(ServerTest, StopWakesIdleClients) {
  StartServer();
  std::unique_ptr<Client> client = MustConnect();
  ASSERT_LILSM_OK(client->Ping());
  server_->Stop();
  // The connection was closed by the drain; the client finds out on its
  // next round trip and reports it as an I/O error.
  Status s = client->Ping();
  EXPECT_FALSE(s.ok());
}

TEST_F(ServerTest, GracefulShutdownPersistsEveryAckedWrite) {
  // The kill-after-ack scenario: a client writes, gets the ack, and is
  // killed (socket close with no farewell). SIGTERM-style Stop() then
  // closes the DB. Every acknowledged write must be present after a
  // WAL-replaying reopen.
  StartServer();
  constexpr Key kCount = 200;
  {
    std::unique_ptr<Client> client = MustConnect();
    uint64_t leaked_snapshot = 0;
    ASSERT_LILSM_OK(client->Put(0, FixedValue("seed")));
    ASSERT_LILSM_OK(client->NewSnapshot(&leaked_snapshot));
    for (Key k = 0; k < kCount; k++) {
      ASSERT_LILSM_OK(
          client->Put(k, FixedValue("acked-" + std::to_string(k))));
    }
    // Client killed here: destructor closes the socket abruptly while
    // still holding a server-side snapshot.
  }
  server_->Stop();
  server_.reset();
  db_.reset();  // closes the DB; the WAL holds every acked write

  std::unique_ptr<DB> reopened;
  ASSERT_LILSM_OK(DB::Open(ServerDbOptions(), dir_.path() + "/db",
                           &reopened));
  std::string value;
  for (Key k = 0; k < kCount; k++) {
    ASSERT_LILSM_OK(reopened->Get(k, &value));
    ASSERT_EQ(value, FixedValue("acked-" + std::to_string(k))) << "key " << k;
  }
}

TEST_F(ServerTest, ManyClientsInterleave) {
  StartServer();
  constexpr int kClients = 8;
  constexpr Key kPerClient = 64;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; c++) {
    threads.emplace_back([this, c] {
      std::unique_ptr<Client> client;
      ASSERT_LILSM_OK(Client::Connect(server_->socket_path(), &client));
      const Key base = static_cast<Key>(c + 1) << 32;
      for (Key i = 0; i < kPerClient; i++) {
        ASSERT_LILSM_OK(
            client->Put(base + i, "c" + std::to_string(c) + "-" +
                                      std::to_string(i)));
      }
      std::vector<Key> keys;
      for (Key i = 0; i < kPerClient; i++) keys.push_back(base + i);
      std::vector<std::string> values;
      std::vector<Status> statuses;
      ASSERT_LILSM_OK(client->MultiGet(keys, &values, &statuses));
      for (Key i = 0; i < kPerClient; i++) {
        ASSERT_LILSM_OK(statuses[i]);
        ASSERT_EQ(values[i],
                  "c" + std::to_string(c) + "-" + std::to_string(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(server_->connections_accepted(), static_cast<uint64_t>(kClients));
}

}  // namespace
}  // namespace lilsm
