// LRUCache / BlockCache: charged-capacity eviction, recency order,
// replacement, per-file invalidation, counters, and a TSan-exercised
// concurrent mixed-operation test (this suite runs in the TSan CI job).
#include "util/lru_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/random.h"

namespace lilsm {
namespace {

using IntCache = LRUCache<int, std::string>;

TEST(LruCacheTest, LookupReturnsInsertedValue) {
  IntCache cache(1 << 20, /*num_shards=*/1);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  cache.Insert(1, "one", 8);
  auto v = cache.Lookup(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, "one");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, InsertReplacesExistingKey) {
  IntCache cache(1 << 20, 1);
  cache.Insert(1, "old", 100);
  cache.Insert(1, "new", 10);
  EXPECT_EQ(*cache.Lookup(1), "new");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.MemoryUsage(), 10u);
}

TEST(LruCacheTest, EvictsColdEntriesWhenOverCharge) {
  // One shard so the capacity applies exactly.
  IntCache cache(100, 1);
  for (int i = 0; i < 10; i++) {
    cache.Insert(i, std::to_string(i), 30);  // capacity holds 3
  }
  EXPECT_LE(cache.MemoryUsage(), 100u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Lookup(0), nullptr);  // coldest are gone
  ASSERT_NE(cache.Lookup(9), nullptr);  // hottest survive
  EXPECT_EQ(cache.evictions(), 7u);
}

TEST(LruCacheTest, LookupRefreshesRecency) {
  IntCache cache(90, 1);  // holds 3 entries of charge 30
  cache.Insert(1, "a", 30);
  cache.Insert(2, "b", 30);
  cache.Insert(3, "c", 30);
  ASSERT_NE(cache.Lookup(1), nullptr);  // touch 1: now 2 is coldest
  cache.Insert(4, "d", 30);             // evicts 2
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
  EXPECT_NE(cache.Lookup(4), nullptr);
}

TEST(LruCacheTest, OversizedEntryIsEvictedButReturnedValueSurvives) {
  IntCache cache(50, 1);
  cache.Insert(1, "huge", 500);
  // The entry cannot be cached, but nothing crashes and the cache stays
  // within budget.
  EXPECT_EQ(cache.MemoryUsage(), 0u);
  EXPECT_EQ(cache.Lookup(1), nullptr);
}

TEST(LruCacheTest, EvictedValueStaysAliveForHolders) {
  IntCache cache(60, 1);
  cache.Insert(1, "pinned", 30);
  auto pinned = cache.Lookup(1);
  cache.Insert(2, "b", 30);
  cache.Insert(3, "c", 30);  // evicts 1
  EXPECT_EQ(cache.Lookup(1), nullptr);
  ASSERT_NE(pinned, nullptr);  // the shared_ptr keeps the value alive
  EXPECT_EQ(*pinned, "pinned");
}

TEST(LruCacheTest, EraseAndClear) {
  IntCache cache(1 << 20, 2);
  cache.Insert(1, "a", 10);
  cache.Insert(2, "b", 10);
  cache.Erase(1);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(2), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.MemoryUsage(), 0u);
}

TEST(BlockCacheTest, KeysAreScopedPerFile) {
  BlockCache cache(1 << 20);
  cache.Insert(1, 0, "file1-block0");
  cache.Insert(2, 0, "file2-block0");
  ASSERT_NE(cache.Lookup(1, 0), nullptr);
  EXPECT_EQ(*cache.Lookup(1, 0), "file1-block0");
  EXPECT_EQ(*cache.Lookup(2, 0), "file2-block0");
  EXPECT_EQ(cache.Lookup(1, 4096), nullptr);
}

TEST(BlockCacheTest, EraseFilePurgesOnlyThatFile) {
  BlockCache cache(1 << 20);
  for (uint64_t off = 0; off < 10 * 4096; off += 4096) {
    cache.Insert(7, off, std::string(64, 'a'));
    cache.Insert(8, off, std::string(64, 'b'));
  }
  cache.EraseFile(7);
  for (uint64_t off = 0; off < 10 * 4096; off += 4096) {
    EXPECT_EQ(cache.Lookup(7, off), nullptr);
    EXPECT_NE(cache.Lookup(8, off), nullptr);
  }
  EXPECT_EQ(cache.size(), 10u);
}

TEST(BlockCacheTest, EraseFilesPurgesTheWholeBatchInOneScan) {
  BlockCache cache(1 << 20);
  for (uint64_t file = 1; file <= 5; file++) {
    for (uint64_t off = 0; off < 4 * 4096; off += 4096) {
      cache.Insert(file, off, std::string(64, 'x'));
    }
  }
  cache.EraseFiles({2, 4, 5});
  for (uint64_t off = 0; off < 4 * 4096; off += 4096) {
    EXPECT_NE(cache.Lookup(1, off), nullptr);
    EXPECT_EQ(cache.Lookup(2, off), nullptr);
    EXPECT_NE(cache.Lookup(3, off), nullptr);
    EXPECT_EQ(cache.Lookup(4, off), nullptr);
    EXPECT_EQ(cache.Lookup(5, off), nullptr);
  }
  cache.EraseFiles({});  // no-op
  EXPECT_EQ(cache.size(), 8u);
}

TEST(BlockCacheTest, ChargesIncludeEntryOverhead) {
  BlockCache cache(1 << 20);
  cache.Insert(1, 0, std::string(4096, 'x'));
  EXPECT_GT(cache.MemoryUsage(), 4096u);
  cache.Clear();
  EXPECT_EQ(cache.MemoryUsage(), 0u);
}

// Concurrent mixed operations over a small cache: lookups, inserts,
// per-file purges, and memory reads race across shards. Run under
// TSan/ASan in CI; asserts only invariants that hold under any
// interleaving.
TEST(BlockCacheTest, ConcurrentMixedOperationsAreRaceFree) {
  BlockCache cache(64 << 10);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&cache, t] {
      Random rnd(1234 + t);
      for (int i = 0; i < kOpsPerThread; i++) {
        const uint64_t file = rnd.Uniform(8);
        const uint64_t offset = rnd.Uniform(64) * 4096;
        switch (rnd.Uniform(8)) {
          case 0:
            cache.EraseFile(file);
            break;
          case 1:
            (void)cache.MemoryUsage();
            break;
          case 2:
          case 3:
            cache.Insert(file, offset,
                         std::string(128 + rnd.Uniform(512), 'v'));
            break;
          default: {
            BlockCache::BlockRef ref = cache.Lookup(file, offset);
            if (ref != nullptr) {
              ASSERT_FALSE(ref->empty());  // value integrity under churn
            }
            break;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.MemoryUsage(), (64u << 10));
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

}  // namespace
}  // namespace lilsm
