// End-to-end engine tests: write/read/delete semantics, flush and
// compaction invariants, recovery (WAL + MANIFEST replay), iterators,
// range lookups, reconfiguration across all index types and granularities,
// all validated against a std::map reference model.
#include "lsm/db.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;
using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 48;

DBOptions SmallDbOptions() {
  DBOptions options;
  options.write_buffer_size = 64 << 10;   // tiny: force frequent flushes
  options.sstable_target_size = 32 << 10; // many small tables
  options.l0_compaction_trigger = 2;
  options.value_size = kValueSize;
  options.key_size = 24;
  return options;
}

std::string ValueFor(Key key, uint64_t version) {
  return DeriveValue(key ^ (version * 0x9E3779B9), kValueSize);
}

class DbTest : public ::testing::Test {
 protected:
  void Open(DBOptions options = SmallDbOptions()) {
    db_.reset();
    ASSERT_LILSM_OK(DB::Open(options, dir_.path() + "/db", &db_));
  }

  void Reopen(DBOptions options = SmallDbOptions()) {
    db_.reset();
    ASSERT_LILSM_OK(DB::Open(options, dir_.path() + "/db", &db_));
  }

  /// Full verification of the DB against the model: every model key via
  /// Get, every deleted key NotFound, and the iterator scan matches.
  void VerifyAgainstModel(const std::map<Key, std::string>& model,
                          const std::vector<Key>& deleted = {}) {
    std::string value;
    for (const auto& [key, expected] : model) {
      ASSERT_LILSM_OK(db_->Get(key, &value));
      ASSERT_EQ(value, expected) << "key " << key;
    }
    for (Key key : deleted) {
      if (model.count(key)) continue;
      ASSERT_TRUE(db_->Get(key, &value).IsNotFound()) << "key " << key;
    }
    auto iter = db_->NewIterator();
    auto it = model.begin();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++it) {
      ASSERT_NE(it, model.end());
      ASSERT_EQ(iter->key(), it->first);
      ASSERT_EQ(iter->value().ToString(), it->second);
    }
    ASSERT_EQ(it, model.end());
    ASSERT_LILSM_OK(iter->status());
  }

  ScratchDir dir_{"db"};
  std::unique_ptr<DB> db_;
};

TEST_F(DbTest, EmptyDbBehaves) {
  Open();
  std::string value;
  EXPECT_TRUE(db_->Get(123, &value).IsNotFound());
  auto iter = db_->NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_EQ(db_->LastSequence(), 0u);
}

TEST_F(DbTest, PutGetOverwriteDelete) {
  Open();
  std::string value;
  ASSERT_LILSM_OK(db_->Put(1, ValueFor(1, 0)));
  ASSERT_LILSM_OK(db_->Get(1, &value));
  EXPECT_EQ(value, ValueFor(1, 0));

  ASSERT_LILSM_OK(db_->Put(1, ValueFor(1, 1)));
  ASSERT_LILSM_OK(db_->Get(1, &value));
  EXPECT_EQ(value, ValueFor(1, 1));

  ASSERT_LILSM_OK(db_->Delete(1));
  EXPECT_TRUE(db_->Get(1, &value).IsNotFound());

  ASSERT_LILSM_OK(db_->Put(1, ValueFor(1, 2)));
  ASSERT_LILSM_OK(db_->Get(1, &value));
  EXPECT_EQ(value, ValueFor(1, 2));
}

TEST_F(DbTest, WriteBatchIsAtomicallyVisible) {
  Open();
  WriteBatch batch;
  for (Key k = 100; k < 150; k++) batch.Put(k, ValueFor(k, 0));
  batch.Delete(120);
  ASSERT_LILSM_OK(db_->Write(&batch));
  std::string value;
  ASSERT_LILSM_OK(db_->Get(119, &value));
  EXPECT_TRUE(db_->Get(120, &value).IsNotFound());
  EXPECT_EQ(db_->LastSequence(), 51u);
}

TEST_F(DbTest, FlushAndCompactionPreserveData) {
  Open();
  std::map<Key, std::string> model;
  std::vector<Key> keys = RandomGapKeys(3000, 21);
  for (size_t i = 0; i < keys.size(); i++) {
    const std::string value = ValueFor(keys[i], 0);
    ASSERT_LILSM_OK(db_->Put(keys[i], value));
    model[keys[i]] = value;
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  EXPECT_GT(db_->stats()->Count(Counter::kFlushes), 0u);
  VerifyAgainstModel(model);
}

TEST_F(DbTest, RandomOpsMatchReferenceModel) {
  Open();
  std::map<Key, std::string> model;
  std::vector<Key> deleted;
  Random rnd(1234);
  const std::vector<Key> key_space = RandomGapKeys(800, 55);
  for (int op = 0; op < 12000; op++) {
    const Key key = key_space[rnd.Uniform(key_space.size())];
    if (rnd.Uniform(4) == 0) {
      ASSERT_LILSM_OK(db_->Delete(key));
      model.erase(key);
      deleted.push_back(key);
    } else {
      const std::string value = ValueFor(key, op);
      ASSERT_LILSM_OK(db_->Put(key, value));
      model[key] = value;
    }
  }
  VerifyAgainstModel(model, deleted);
  ASSERT_LILSM_OK(db_->FlushMemTable());
  VerifyAgainstModel(model, deleted);
}

TEST_F(DbTest, LevelsStaySortedAndDisjoint) {
  Open();
  std::vector<Key> keys = RandomGapKeys(5000, 31);
  Random rnd(7);
  for (size_t i = keys.size(); i > 1; i--) {
    std::swap(keys[i - 1], keys[rnd.Uniform(i)]);
  }
  for (Key key : keys) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  // Deeper levels must exist with the tiny buffer, proving compactions ran.
  int populated = 0;
  for (int level = 0; level < kNumLevels; level++) {
    if (db_->NumFilesAtLevel(level) > 0) populated++;
  }
  EXPECT_GE(populated, 1);
  EXPECT_GT(db_->stats()->Count(Counter::kCompactions), 0u);
}

TEST_F(DbTest, RangeLookupMatchesModel) {
  Open();
  std::map<Key, std::string> model;
  std::vector<Key> keys = RandomGapKeys(2000, 77);
  for (Key key : keys) {
    const std::string value = ValueFor(key, 0);
    ASSERT_LILSM_OK(db_->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());

  Random rnd(9);
  for (int trial = 0; trial < 50; trial++) {
    const Key start = keys[rnd.Uniform(keys.size())] + rnd.Uniform(3);
    const size_t len = 1 + rnd.Uniform(64);
    std::vector<std::pair<Key, std::string>> out;
    ASSERT_LILSM_OK(db_->RangeLookup(start, len, &out));
    auto it = model.lower_bound(start);
    for (const auto& [key, value] : out) {
      ASSERT_NE(it, model.end());
      ASSERT_EQ(key, it->first);
      ASSERT_EQ(value, it->second);
      ++it;
    }
    const size_t expected =
        std::min<size_t>(len, std::distance(model.lower_bound(start),
                                            model.end()));
    ASSERT_EQ(out.size(), expected);
  }
}

TEST_F(DbTest, RecoversFromWalAfterReopen) {
  Open();
  std::map<Key, std::string> model;
  for (Key key = 1; key <= 500; key++) {
    const std::string value = ValueFor(key, 1);
    ASSERT_LILSM_OK(db_->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db_->Delete(100));
  model.erase(100);
  const SequenceNumber seq_before = db_->LastSequence();
  // No explicit flush: reopen must replay the WAL.
  Reopen();
  EXPECT_GE(db_->LastSequence(), seq_before);
  VerifyAgainstModel(model, {100});
}

TEST_F(DbTest, RecoversManifestStateAcrossReopens) {
  Open();
  std::map<Key, std::string> model;
  std::vector<Key> keys = RandomGapKeys(4000, 41);
  for (Key key : keys) {
    const std::string value = ValueFor(key, 0);
    ASSERT_LILSM_OK(db_->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  Reopen();
  VerifyAgainstModel(model);
  // Write more after recovery; the file-number space must not collide.
  for (Key key : RandomGapKeys(500, 43)) {
    const std::string value = ValueFor(key, 9);
    ASSERT_LILSM_OK(db_->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  VerifyAgainstModel(model);
}

TEST_F(DbTest, RepeatedReopenIsStable) {
  std::map<Key, std::string> model;
  Open();
  for (int round = 0; round < 4; round++) {
    for (Key key = round * 100; key < (round + 1) * 100u; key++) {
      const std::string value = ValueFor(key, round);
      ASSERT_LILSM_OK(db_->Put(key, value));
      model[key] = value;
    }
    Reopen();
    VerifyAgainstModel(model);
  }
}

TEST_F(DbTest, TornWalTailIsDiscardedCleanly) {
  Open();
  for (Key key = 1; key <= 200; key++) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 0)));
  }
  db_.reset();
  // Truncate the newest WAL mid-record to simulate a crash during write.
  Env* env = Env::Default();
  std::vector<std::string> children;
  ASSERT_LILSM_OK(env->GetChildren(dir_.path() + "/db", &children));
  std::string wal_name;
  uint64_t best = 0;
  for (const std::string& name : children) {
    uint64_t number = 0;
    if (ParseFileName(name, &number) == FileKind::kWalFile &&
        number >= best) {
      best = number;
      wal_name = name;
    }
  }
  ASSERT_FALSE(wal_name.empty());
  const std::string wal_path = dir_.path() + "/db/" + wal_name;
  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(env, wal_path, &contents));
  ASSERT_GT(contents.size(), 10u);
  contents.resize(contents.size() - 5);
  ASSERT_LILSM_OK(WriteStringToFile(env, contents, wal_path));

  Reopen();
  // The final record is lost but everything before it must be intact.
  std::string value;
  ASSERT_LILSM_OK(db_->Get(1, &value));
  EXPECT_EQ(value, ValueFor(1, 0));
  ASSERT_LILSM_OK(db_->Get(198, &value));
}

TEST_F(DbTest, CompactAllDrainsUpperLevels) {
  Open();
  for (Key key : RandomGapKeys(4000, 51)) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db_->CompactAll());
  EXPECT_EQ(db_->NumFilesAtLevel(0), 0);
}

TEST_F(DbTest, TombstonesAreDroppedAtBottomLevel) {
  Open();
  std::vector<Key> keys = RandomGapKeys(2000, 61);
  for (Key key : keys) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 0)));
  }
  for (size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_LILSM_OK(db_->Delete(keys[i]));
  }
  ASSERT_LILSM_OK(db_->CompactAll());
  ASSERT_LILSM_OK(db_->CompactAll());
  uint64_t total_entries = 0;
  for (int level = 0; level < kNumLevels; level++) {
    total_entries += db_->EntriesAtLevel(level);
  }
  // Tombstones compacted into the bottom level disappear entirely.
  EXPECT_LE(total_entries, keys.size() - keys.size() / 2 + 16);
  std::string value;
  EXPECT_TRUE(db_->Get(keys[0], &value).IsNotFound());
  ASSERT_LILSM_OK(db_->Get(keys[1], &value));
}

// ---- parameterized over index types ----

class DbIndexTypeTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(DbIndexTypeTest, FullWorkloadWithEachIndexType) {
  ScratchDir dir("dbtype");
  DBOptions options = SmallDbOptions();
  options.index_type = GetParam();
  options.index_config = IndexConfig::FromPositionBoundary(32);
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));

  std::map<Key, std::string> model;
  std::vector<Key> keys = RandomGapKeys(3000, 71);
  Random rnd(13);
  for (size_t i = keys.size(); i > 1; i--) {
    std::swap(keys[i - 1], keys[rnd.Uniform(i)]);
  }
  for (Key key : keys) {
    const std::string value = ValueFor(key, 3);
    ASSERT_LILSM_OK(db->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db->FlushMemTable());
  std::string value;
  for (const auto& [key, expected] : model) {
    ASSERT_LILSM_OK(db->Get(key, &value));
    ASSERT_EQ(value, expected);
  }
  EXPECT_GT(db->TotalIndexMemory(), 0u);
  EXPECT_GT(db->TotalFilterMemory(), 0u);
}

TEST_P(DbIndexTypeTest, ReconfigureToEveryOtherType) {
  ScratchDir dir("dbreconf");
  DBOptions options = SmallDbOptions();
  options.index_type = GetParam();
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));
  std::vector<Key> keys = RandomGapKeys(2000, 81);
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());

  std::string value;
  for (IndexType target : kAllIndexTypes) {
    ASSERT_LILSM_OK(db->ReconfigureIndexes(
        target, IndexConfig::FromPositionBoundary(16)));
    for (size_t i = 0; i < keys.size(); i += 37) {
      SCOPED_TRACE(std::string("after reconfigure to ") +
                   IndexTypeName(target));
      ASSERT_LILSM_OK(db->Get(keys[i], &value));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, DbIndexTypeTest, ::testing::ValuesIn(kAllIndexTypes),
    [](const ::testing::TestParamInfo<IndexType>& info) {
      return std::string(IndexTypeName(info.param));
    });

TEST(DbLevelGranularityTest, LevelModelsAnswerLookups) {
  ScratchDir dir("dblevel");
  DBOptions options = SmallDbOptions();
  options.index_granularity = IndexGranularity::kLevel;
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));

  std::vector<Key> keys = RandomGapKeys(4000, 91);
  Random rnd(17);
  for (size_t i = keys.size(); i > 1; i--) {
    std::swap(keys[i - 1], keys[rnd.Uniform(i)]);
  }
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());

  std::string value;
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Get(key, &value));
    ASSERT_EQ(value, ValueFor(key, 0));
  }
  // Level models must actually have been built and be cheaper than
  // per-file indexes on the same tree.
  const size_t level_memory = db->TotalIndexMemory();
  EXPECT_GT(level_memory, 0u);
  db->SetIndexGranularity(IndexGranularity::kFile);
  const size_t file_memory = db->TotalIndexMemory();
  EXPECT_LE(level_memory, file_memory * 2);  // sanity: same order or less
  EXPECT_GT(db->stats()->TimerCount(Timer::kLevelIndexBuild), 0u);
}

TEST(DbStatsTest, LookupCountersTrackOperations) {
  ScratchDir dir("dbstats");
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(SmallDbOptions(), dir.path() + "/db", &db));
  for (Key key = 0; key < 2000; key++) {
    ASSERT_LILSM_OK(db->Put(key * 10, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());
  db->stats()->Reset();

  std::string value;
  for (Key key = 0; key < 100; key++) {
    ASSERT_LILSM_OK(db->Get(key * 10, &value));
  }
  EXPECT_EQ(db->stats()->Count(Counter::kPointLookups), 100u);
  EXPECT_GT(db->stats()->TimerCount(Timer::kIndexPredict), 0u);
  EXPECT_GT(db->stats()->TimerCount(Timer::kDiskRead), 0u);
  EXPECT_GT(db->stats()->TimerCount(Timer::kBinarySearch), 0u);
}

// ---- per-call options structs, MultiGet, DBOptions::Validate ----

TEST(DbOptionsValidateTest, RejectsEachInvalidConfiguration) {
  ScratchDir dir("dbvalidate");
  std::unique_ptr<DB> db;
  auto expect_rejected = [&](DBOptions options, const char* what) {
    Status s = DB::Open(options, dir.path() + "/db", &db);
    EXPECT_TRUE(s.IsInvalidArgument()) << what << ": " << s.ToString();
    EXPECT_EQ(db, nullptr) << what;
  };

  {
    DBOptions o = SmallDbOptions();
    o.value_size = 0;  // segmented format: fixed geometry needs a size
    expect_rejected(o, "value_size == 0 under kSegmented");
  }
  {
    DBOptions o = SmallDbOptions();
    o.size_ratio = 0;
    expect_rejected(o, "size_ratio == 0");
  }
  {
    DBOptions o = SmallDbOptions();
    o.size_ratio = -10;
    expect_rejected(o, "negative size_ratio");
  }
  {
    DBOptions o = SmallDbOptions();
    o.l0_compaction_trigger = 0;
    expect_rejected(o, "l0_compaction_trigger == 0");
  }
  {
    DBOptions o = SmallDbOptions();
    o.l0_slowdown_trigger = -1;
    expect_rejected(o, "negative l0_slowdown_trigger");
  }
  {
    DBOptions o = SmallDbOptions();
    o.l0_stop_trigger = 0;
    expect_rejected(o, "l0_stop_trigger == 0");
  }
  {
    DBOptions o = SmallDbOptions();
    o.max_open_tables = 0;  // would thrash open/close on every lookup
    expect_rejected(o, "max_open_tables == 0");
  }
  {
    DBOptions o = SmallDbOptions();
    o.key_size = 7;  // cannot round-trip the 8-byte uint64_t Key
    expect_rejected(o, "key_size < 8");
  }
  {
    DBOptions o = SmallDbOptions();
    o.key_size = 65;  // past the table formats' 64-byte key buffers
    expect_rejected(o, "key_size > 64");
  }
}

TEST(DbOptionsValidateTest, BlockedFormatAllowsVariableValueSize) {
  // value_size is a segmented-geometry constraint; the classic block
  // format stores variable-length values and must open with 0.
  ScratchDir dir("dbvalidate_blocked");
  DBOptions options = SmallDbOptions();
  options.table_format = TableFormat::kBlocked;
  options.value_size = 0;
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));
  ASSERT_LILSM_OK(db->Put(1, "short"));
  ASSERT_LILSM_OK(db->Put(2, std::string(300, 'x')));
  ASSERT_LILSM_OK(db->FlushMemTable());
  std::string value;
  ASSERT_LILSM_OK(db->Get(1, &value));
  EXPECT_EQ(value, "short");
  ASSERT_LILSM_OK(db->Get(2, &value));
  EXPECT_EQ(value, std::string(300, 'x'));
}

/// MultiGet equivalence harness shared by the granularity variants:
/// builds a tree with flushed, compacted, memtable-resident, overwritten,
/// deleted, and absent keys, then checks randomized batches bit-for-bit
/// against per-key Get.
class DbMultiGetTest : public ::testing::TestWithParam<IndexGranularity> {
 protected:
  void LoadMixedTree(DB* db) {
    loaded_ = RandomGapKeys(6000, 33);
    std::vector<Key> order = loaded_;
    Random rnd(91);
    for (size_t i = order.size(); i > 1; i--) {
      std::swap(order[i - 1], order[rnd.Uniform(i)]);
    }
    for (Key key : order) {
      ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 0)));
    }
    // Deletions and overwrites that go through flush + compaction.
    for (size_t i = 0; i < loaded_.size(); i += 5) {
      ASSERT_LILSM_OK(db->Delete(loaded_[i]));
    }
    for (size_t i = 1; i < loaded_.size(); i += 7) {
      ASSERT_LILSM_OK(db->Put(loaded_[i], ValueFor(loaded_[i], 1)));
    }
    ASSERT_LILSM_OK(db->FlushMemTable());
    ASSERT_LILSM_OK(db->CompactUntilStable());
    // A memtable-resident tail (fresh values, plus deletes shadowing
    // flushed entries) so the batch's memtable pass is exercised.
    for (size_t i = 2; i < loaded_.size(); i += 11) {
      ASSERT_LILSM_OK(db->Put(loaded_[i], ValueFor(loaded_[i], 2)));
    }
    for (size_t i = 3; i < loaded_.size(); i += 13) {
      ASSERT_LILSM_OK(db->Delete(loaded_[i]));
    }
  }

  /// A request pool of present, deleted, overwritten, and absent keys.
  std::vector<Key> RequestPool() const {
    std::vector<Key> pool = loaded_;
    for (size_t i = 0; i < loaded_.size(); i += 3) {
      pool.push_back(loaded_[i] + 1);  // gaps are >= 1: usually absent
    }
    pool.push_back(0);
    pool.push_back(~uint64_t{0});
    return pool;
  }

  void CheckBatchesMatchGet(DB* db) {
    const std::vector<Key> pool = RequestPool();
    Random rnd(277);
    std::vector<std::string> values;
    std::vector<Status> statuses;
    std::string expected;
    for (size_t batch_size : {1u, 3u, 128u, 2048u, 10000u}) {
      std::vector<Key> batch;
      batch.reserve(batch_size);
      for (size_t i = 0; i < batch_size; i++) {
        batch.push_back(pool[rnd.Uniform(pool.size())]);
      }
      ASSERT_LILSM_OK(db->MultiGet(ReadOptions(), batch, &values,
                                   &statuses));
      ASSERT_EQ(values.size(), batch.size());
      ASSERT_EQ(statuses.size(), batch.size());
      for (size_t i = 0; i < batch.size(); i++) {
        Status ref = db->Get(batch[i], &expected);
        ASSERT_EQ(statuses[i].ok(), ref.ok())
            << "key " << batch[i] << " batch_size " << batch_size;
        if (ref.ok()) {
          ASSERT_EQ(values[i], expected) << "key " << batch[i];
        } else {
          ASSERT_TRUE(statuses[i].IsNotFound()) << statuses[i].ToString();
          ASSERT_TRUE(values[i].empty());
        }
      }
    }
  }

  std::vector<Key> loaded_;
};

TEST_P(DbMultiGetTest, MatchesGetOnRandomizedBatches) {
  ScratchDir dir("dbmultiget");
  DBOptions options = SmallDbOptions();
  options.index_granularity = GetParam();
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));
  LoadMixedTree(db.get());
  CheckBatchesMatchGet(db.get());

  // Batch instrumentation fired.
  EXPECT_GT(db->stats()->Count(Counter::kMultiGetBatches), 0u);
  EXPECT_GT(db->stats()->Count(Counter::kMultiGetKeys), 0u);
  EXPECT_GT(db->stats()->TimerCount(Timer::kMultiGet), 0u);
}

TEST_P(DbMultiGetTest, VerifyFoundAgreesOnEveryBatch) {
  ScratchDir dir("dbmultiget_verify");
  DBOptions options = SmallDbOptions();
  options.index_granularity = GetParam();
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));
  LoadMixedTree(db.get());

  ReadOptions verify;
  verify.verify_found = true;
  const std::vector<Key> pool = RequestPool();
  Random rnd(407);
  std::vector<Key> batch;
  for (size_t i = 0; i < 512; i++) {
    batch.push_back(pool[rnd.Uniform(pool.size())]);
  }
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_LILSM_OK(db->MultiGet(verify, batch, &values, &statuses));
  for (const Status& s : statuses) {
    ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
  }
  // Single-key verify mode too, on hits and misses.
  std::string value;
  for (size_t i = 0; i < 64; i++) {
    Status s = db->Get(verify, pool[rnd.Uniform(pool.size())], &value);
    ASSERT_TRUE(s.ok() || s.IsNotFound()) << s.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Granularities, DbMultiGetTest,
    ::testing::Values(IndexGranularity::kFile, IndexGranularity::kLevel),
    [](const ::testing::TestParamInfo<IndexGranularity>& info) {
      return info.param == IndexGranularity::kFile ? "file" : "level";
    });

TEST_F(DbTest, MultiGetHonorsSnapshots) {
  Open();
  for (Key key = 1; key <= 500; key++) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  const Snapshot* snap = db_->GetSnapshot();
  for (Key key = 1; key <= 500; key++) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 1)));
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());

  std::vector<Key> batch;
  for (Key key = 1; key <= 500; key += 7) batch.push_back(key);
  std::vector<std::string> values;
  std::vector<Status> statuses;

  ReadOptions at_snap;
  at_snap.snapshot = snap;
  ASSERT_LILSM_OK(db_->MultiGet(at_snap, batch, &values, &statuses));
  for (size_t i = 0; i < batch.size(); i++) {
    ASSERT_LILSM_OK(statuses[i]);
    EXPECT_EQ(values[i], ValueFor(batch[i], 0)) << "key " << batch[i];
  }
  ASSERT_LILSM_OK(db_->MultiGet(ReadOptions(), batch, &values, &statuses));
  for (size_t i = 0; i < batch.size(); i++) {
    ASSERT_LILSM_OK(statuses[i]);
    EXPECT_EQ(values[i], ValueFor(batch[i], 1)) << "key " << batch[i];
  }
  db_->ReleaseSnapshot(snap);
}

TEST_F(DbTest, RangeLookupHonorsSnapshots) {
  Open();
  for (Key key = 10; key <= 100; key += 10) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  const Snapshot* snap = db_->GetSnapshot();
  ASSERT_LILSM_OK(db_->Delete(50));
  ASSERT_LILSM_OK(db_->Put(55, ValueFor(55, 0)));

  std::vector<std::pair<Key, std::string>> out;
  ReadOptions at_snap;
  at_snap.snapshot = snap;
  ASSERT_LILSM_OK(db_->RangeLookup(at_snap, 45, 3, &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, 50u);  // still visible through the snapshot
  EXPECT_EQ(out[1].first, 60u);
  EXPECT_EQ(out[2].first, 70u);

  ASSERT_LILSM_OK(db_->RangeLookup(ReadOptions(), 45, 3, &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, 55u);  // 50 deleted, 55 inserted since
  EXPECT_EQ(out[1].first, 60u);
  EXPECT_EQ(out[2].first, 70u);
  db_->ReleaseSnapshot(snap);
}

TEST_F(DbTest, WriteOptionsDisableWalIsLostWithoutFlush) {
  Open();
  ASSERT_LILSM_OK(db_->Put(1, ValueFor(1, 0)));  // logged
  WriteOptions no_wal;
  no_wal.disable_wal = true;
  ASSERT_LILSM_OK(db_->Put(no_wal, 2, ValueFor(2, 0)));
  Reopen();  // simulated crash: only the WAL survives the memtable
  std::string value;
  ASSERT_LILSM_OK(db_->Get(1, &value));
  EXPECT_EQ(value, ValueFor(1, 0));
  EXPECT_TRUE(db_->Get(2, &value).IsNotFound());

  // Flushed WAL-less writes are durable.
  ASSERT_LILSM_OK(db_->Put(no_wal, 3, ValueFor(3, 0)));
  ASSERT_LILSM_OK(db_->FlushMemTable());
  Reopen();
  ASSERT_LILSM_OK(db_->Get(3, &value));
  EXPECT_EQ(value, ValueFor(3, 0));
}

TEST_F(DbTest, WriteOptionsSyncOverridesDbDefault) {
  // Functional smoke in both directions: a per-call sync against a lazy
  // DB and a per-call no-sync against a durable DB both land.
  DBOptions durable = SmallDbOptions();
  durable.sync_wal = true;
  Open(durable);
  WriteOptions lazy;
  lazy.sync = false;
  ASSERT_LILSM_OK(db_->Put(lazy, 1, ValueFor(1, 0)));
  WriteOptions synced;
  synced.sync = true;
  ASSERT_LILSM_OK(db_->Put(synced, 2, ValueFor(2, 0)));
  Reopen(durable);
  std::string value;
  ASSERT_LILSM_OK(db_->Get(1, &value));
  ASSERT_LILSM_OK(db_->Get(2, &value));
}

TEST_F(DbTest, PerCallStatsSinkRedirectsInstrumentation) {
  Open();
  for (Key key = 1; key <= 2000; key++) {
    ASSERT_LILSM_OK(db_->Put(key * 3, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  db_->stats()->Reset();

  Stats local;
  ReadOptions tracked;
  tracked.stats = &local;
  std::string value;
  for (Key key = 1; key <= 50; key++) {
    ASSERT_LILSM_OK(db_->Get(tracked, key * 3, &value));
  }
  EXPECT_EQ(local.Count(Counter::kPointLookups), 50u);
  EXPECT_GT(local.TimerCount(Timer::kMemtableGet), 0u);
  // The redirect is exclusive: the DB-wide sink saw none of it.
  EXPECT_EQ(db_->stats()->Count(Counter::kPointLookups), 0u);
  EXPECT_EQ(db_->stats()->TimerCount(Timer::kBloomCheck), 0u);

  // MultiGet redirects the batch instrumentation the same way.
  std::vector<Key> batch = {3, 6, 9, 12, 1};
  std::vector<std::string> values;
  std::vector<Status> statuses;
  ASSERT_LILSM_OK(db_->MultiGet(tracked, batch, &values, &statuses));
  EXPECT_EQ(local.Count(Counter::kMultiGetBatches), 1u);
  EXPECT_EQ(local.Count(Counter::kMultiGetKeys), batch.size());
  EXPECT_EQ(db_->stats()->Count(Counter::kMultiGetBatches), 0u);
}

/// The read-only introspection surface is const: this compiles only if
/// every observer method is callable through `const DB&`.
size_t ObserveConstSurface(const DB& db) {
  size_t total = db.TotalIndexMemory() + db.TotalFilterMemory();
  for (int level = 0; level < kNumLevels; level++) {
    total += static_cast<size_t>(db.NumFilesAtLevel(level));
    total += static_cast<size_t>(db.BytesAtLevel(level));
    total += static_cast<size_t>(db.EntriesAtLevel(level));
    total += db.LevelIndexMemory(level);
  }
  total += static_cast<size_t>(db.LastSequence());
  total += static_cast<size_t>(db.stats()->Count(Counter::kWrites));
  return total;
}

TEST_F(DbTest, ConstObserverSeesIntrospectionSurface) {
  Open();
  for (Key key = 1; key <= 1000; key++) {
    ASSERT_LILSM_OK(db_->Put(key * 2, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  const DB& observer = *db_;
  EXPECT_GT(ObserveConstSurface(observer), 0u);
  EXPECT_EQ(observer.LastSequence(), 1000u);
  EXPECT_GT(observer.NumFilesAtLevel(0) + observer.NumFilesAtLevel(1), 0);
}

TEST(DbBlockedFormatTest, ClassicFormatCrossCheck) {
  // The block-based (classic LevelDB) substrate must agree with the
  // segmented format on the same workload.
  ScratchDir dir("dbblocked");
  DBOptions options = SmallDbOptions();
  options.table_format = TableFormat::kBlocked;
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));

  std::map<Key, std::string> model;
  std::vector<Key> keys = RandomGapKeys(3000, 101);
  for (Key key : keys) {
    const std::string value = ValueFor(key, 0);
    ASSERT_LILSM_OK(db->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db->FlushMemTable());
  std::string value;
  for (const auto& [key, expected] : model) {
    ASSERT_LILSM_OK(db->Get(key, &value));
    ASSERT_EQ(value, expected);
  }
  auto iter = db->NewIterator();
  size_t n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
  EXPECT_EQ(n, model.size());
}

}  // namespace
}  // namespace lilsm
