// End-to-end engine tests: write/read/delete semantics, flush and
// compaction invariants, recovery (WAL + MANIFEST replay), iterators,
// range lookups, reconfiguration across all index types and granularities,
// all validated against a std::map reference model.
#include "lsm/db.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;
using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 48;

DBOptions SmallDbOptions() {
  DBOptions options;
  options.write_buffer_size = 64 << 10;   // tiny: force frequent flushes
  options.sstable_target_size = 32 << 10; // many small tables
  options.l0_compaction_trigger = 2;
  options.value_size = kValueSize;
  options.key_size = 24;
  return options;
}

std::string ValueFor(Key key, uint64_t version) {
  return DeriveValue(key ^ (version * 0x9E3779B9), kValueSize);
}

class DbTest : public ::testing::Test {
 protected:
  void Open(DBOptions options = SmallDbOptions()) {
    db_.reset();
    ASSERT_LILSM_OK(DB::Open(options, dir_.path() + "/db", &db_));
  }

  void Reopen(DBOptions options = SmallDbOptions()) {
    db_.reset();
    ASSERT_LILSM_OK(DB::Open(options, dir_.path() + "/db", &db_));
  }

  /// Full verification of the DB against the model: every model key via
  /// Get, every deleted key NotFound, and the iterator scan matches.
  void VerifyAgainstModel(const std::map<Key, std::string>& model,
                          const std::vector<Key>& deleted = {}) {
    std::string value;
    for (const auto& [key, expected] : model) {
      ASSERT_LILSM_OK(db_->Get(key, &value));
      ASSERT_EQ(value, expected) << "key " << key;
    }
    for (Key key : deleted) {
      if (model.count(key)) continue;
      ASSERT_TRUE(db_->Get(key, &value).IsNotFound()) << "key " << key;
    }
    auto iter = db_->NewIterator();
    auto it = model.begin();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++it) {
      ASSERT_NE(it, model.end());
      ASSERT_EQ(iter->key(), it->first);
      ASSERT_EQ(iter->value().ToString(), it->second);
    }
    ASSERT_EQ(it, model.end());
    ASSERT_LILSM_OK(iter->status());
  }

  ScratchDir dir_{"db"};
  std::unique_ptr<DB> db_;
};

TEST_F(DbTest, EmptyDbBehaves) {
  Open();
  std::string value;
  EXPECT_TRUE(db_->Get(123, &value).IsNotFound());
  auto iter = db_->NewIterator();
  iter->SeekToFirst();
  EXPECT_FALSE(iter->Valid());
  EXPECT_EQ(db_->LastSequence(), 0u);
}

TEST_F(DbTest, PutGetOverwriteDelete) {
  Open();
  std::string value;
  ASSERT_LILSM_OK(db_->Put(1, ValueFor(1, 0)));
  ASSERT_LILSM_OK(db_->Get(1, &value));
  EXPECT_EQ(value, ValueFor(1, 0));

  ASSERT_LILSM_OK(db_->Put(1, ValueFor(1, 1)));
  ASSERT_LILSM_OK(db_->Get(1, &value));
  EXPECT_EQ(value, ValueFor(1, 1));

  ASSERT_LILSM_OK(db_->Delete(1));
  EXPECT_TRUE(db_->Get(1, &value).IsNotFound());

  ASSERT_LILSM_OK(db_->Put(1, ValueFor(1, 2)));
  ASSERT_LILSM_OK(db_->Get(1, &value));
  EXPECT_EQ(value, ValueFor(1, 2));
}

TEST_F(DbTest, WriteBatchIsAtomicallyVisible) {
  Open();
  WriteBatch batch;
  for (Key k = 100; k < 150; k++) batch.Put(k, ValueFor(k, 0));
  batch.Delete(120);
  ASSERT_LILSM_OK(db_->Write(&batch));
  std::string value;
  ASSERT_LILSM_OK(db_->Get(119, &value));
  EXPECT_TRUE(db_->Get(120, &value).IsNotFound());
  EXPECT_EQ(db_->LastSequence(), 51u);
}

TEST_F(DbTest, FlushAndCompactionPreserveData) {
  Open();
  std::map<Key, std::string> model;
  std::vector<Key> keys = RandomGapKeys(3000, 21);
  for (size_t i = 0; i < keys.size(); i++) {
    const std::string value = ValueFor(keys[i], 0);
    ASSERT_LILSM_OK(db_->Put(keys[i], value));
    model[keys[i]] = value;
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  EXPECT_GT(db_->stats()->Count(Counter::kFlushes), 0u);
  VerifyAgainstModel(model);
}

TEST_F(DbTest, RandomOpsMatchReferenceModel) {
  Open();
  std::map<Key, std::string> model;
  std::vector<Key> deleted;
  Random rnd(1234);
  const std::vector<Key> key_space = RandomGapKeys(800, 55);
  for (int op = 0; op < 12000; op++) {
    const Key key = key_space[rnd.Uniform(key_space.size())];
    if (rnd.Uniform(4) == 0) {
      ASSERT_LILSM_OK(db_->Delete(key));
      model.erase(key);
      deleted.push_back(key);
    } else {
      const std::string value = ValueFor(key, op);
      ASSERT_LILSM_OK(db_->Put(key, value));
      model[key] = value;
    }
  }
  VerifyAgainstModel(model, deleted);
  ASSERT_LILSM_OK(db_->FlushMemTable());
  VerifyAgainstModel(model, deleted);
}

TEST_F(DbTest, LevelsStaySortedAndDisjoint) {
  Open();
  std::vector<Key> keys = RandomGapKeys(5000, 31);
  Random rnd(7);
  for (size_t i = keys.size(); i > 1; i--) {
    std::swap(keys[i - 1], keys[rnd.Uniform(i)]);
  }
  for (Key key : keys) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  // Deeper levels must exist with the tiny buffer, proving compactions ran.
  int populated = 0;
  for (int level = 0; level < kNumLevels; level++) {
    if (db_->NumFilesAtLevel(level) > 0) populated++;
  }
  EXPECT_GE(populated, 1);
  EXPECT_GT(db_->stats()->Count(Counter::kCompactions), 0u);
}

TEST_F(DbTest, RangeLookupMatchesModel) {
  Open();
  std::map<Key, std::string> model;
  std::vector<Key> keys = RandomGapKeys(2000, 77);
  for (Key key : keys) {
    const std::string value = ValueFor(key, 0);
    ASSERT_LILSM_OK(db_->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());

  Random rnd(9);
  for (int trial = 0; trial < 50; trial++) {
    const Key start = keys[rnd.Uniform(keys.size())] + rnd.Uniform(3);
    const size_t len = 1 + rnd.Uniform(64);
    std::vector<std::pair<Key, std::string>> out;
    ASSERT_LILSM_OK(db_->RangeLookup(start, len, &out));
    auto it = model.lower_bound(start);
    for (const auto& [key, value] : out) {
      ASSERT_NE(it, model.end());
      ASSERT_EQ(key, it->first);
      ASSERT_EQ(value, it->second);
      ++it;
    }
    const size_t expected =
        std::min<size_t>(len, std::distance(model.lower_bound(start),
                                            model.end()));
    ASSERT_EQ(out.size(), expected);
  }
}

TEST_F(DbTest, RecoversFromWalAfterReopen) {
  Open();
  std::map<Key, std::string> model;
  for (Key key = 1; key <= 500; key++) {
    const std::string value = ValueFor(key, 1);
    ASSERT_LILSM_OK(db_->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db_->Delete(100));
  model.erase(100);
  const SequenceNumber seq_before = db_->LastSequence();
  // No explicit flush: reopen must replay the WAL.
  Reopen();
  EXPECT_GE(db_->LastSequence(), seq_before);
  VerifyAgainstModel(model, {100});
}

TEST_F(DbTest, RecoversManifestStateAcrossReopens) {
  Open();
  std::map<Key, std::string> model;
  std::vector<Key> keys = RandomGapKeys(4000, 41);
  for (Key key : keys) {
    const std::string value = ValueFor(key, 0);
    ASSERT_LILSM_OK(db_->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  Reopen();
  VerifyAgainstModel(model);
  // Write more after recovery; the file-number space must not collide.
  for (Key key : RandomGapKeys(500, 43)) {
    const std::string value = ValueFor(key, 9);
    ASSERT_LILSM_OK(db_->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  VerifyAgainstModel(model);
}

TEST_F(DbTest, RepeatedReopenIsStable) {
  std::map<Key, std::string> model;
  Open();
  for (int round = 0; round < 4; round++) {
    for (Key key = round * 100; key < (round + 1) * 100u; key++) {
      const std::string value = ValueFor(key, round);
      ASSERT_LILSM_OK(db_->Put(key, value));
      model[key] = value;
    }
    Reopen();
    VerifyAgainstModel(model);
  }
}

TEST_F(DbTest, TornWalTailIsDiscardedCleanly) {
  Open();
  for (Key key = 1; key <= 200; key++) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 0)));
  }
  db_.reset();
  // Truncate the newest WAL mid-record to simulate a crash during write.
  Env* env = Env::Default();
  std::vector<std::string> children;
  ASSERT_LILSM_OK(env->GetChildren(dir_.path() + "/db", &children));
  std::string wal_name;
  uint64_t best = 0;
  for (const std::string& name : children) {
    uint64_t number = 0;
    if (ParseFileName(name, &number) == FileKind::kWalFile &&
        number >= best) {
      best = number;
      wal_name = name;
    }
  }
  ASSERT_FALSE(wal_name.empty());
  const std::string wal_path = dir_.path() + "/db/" + wal_name;
  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(env, wal_path, &contents));
  ASSERT_GT(contents.size(), 10u);
  contents.resize(contents.size() - 5);
  ASSERT_LILSM_OK(WriteStringToFile(env, contents, wal_path));

  Reopen();
  // The final record is lost but everything before it must be intact.
  std::string value;
  ASSERT_LILSM_OK(db_->Get(1, &value));
  EXPECT_EQ(value, ValueFor(1, 0));
  ASSERT_LILSM_OK(db_->Get(198, &value));
}

TEST_F(DbTest, CompactAllDrainsUpperLevels) {
  Open();
  for (Key key : RandomGapKeys(4000, 51)) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db_->CompactAll());
  EXPECT_EQ(db_->NumFilesAtLevel(0), 0);
}

TEST_F(DbTest, TombstonesAreDroppedAtBottomLevel) {
  Open();
  std::vector<Key> keys = RandomGapKeys(2000, 61);
  for (Key key : keys) {
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 0)));
  }
  for (size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_LILSM_OK(db_->Delete(keys[i]));
  }
  ASSERT_LILSM_OK(db_->CompactAll());
  ASSERT_LILSM_OK(db_->CompactAll());
  uint64_t total_entries = 0;
  for (int level = 0; level < kNumLevels; level++) {
    total_entries += db_->EntriesAtLevel(level);
  }
  // Tombstones compacted into the bottom level disappear entirely.
  EXPECT_LE(total_entries, keys.size() - keys.size() / 2 + 16);
  std::string value;
  EXPECT_TRUE(db_->Get(keys[0], &value).IsNotFound());
  ASSERT_LILSM_OK(db_->Get(keys[1], &value));
}

// ---- parameterized over index types ----

class DbIndexTypeTest : public ::testing::TestWithParam<IndexType> {};

TEST_P(DbIndexTypeTest, FullWorkloadWithEachIndexType) {
  ScratchDir dir("dbtype");
  DBOptions options = SmallDbOptions();
  options.index_type = GetParam();
  options.index_config = IndexConfig::FromPositionBoundary(32);
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));

  std::map<Key, std::string> model;
  std::vector<Key> keys = RandomGapKeys(3000, 71);
  Random rnd(13);
  for (size_t i = keys.size(); i > 1; i--) {
    std::swap(keys[i - 1], keys[rnd.Uniform(i)]);
  }
  for (Key key : keys) {
    const std::string value = ValueFor(key, 3);
    ASSERT_LILSM_OK(db->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db->FlushMemTable());
  std::string value;
  for (const auto& [key, expected] : model) {
    ASSERT_LILSM_OK(db->Get(key, &value));
    ASSERT_EQ(value, expected);
  }
  EXPECT_GT(db->TotalIndexMemory(), 0u);
  EXPECT_GT(db->TotalFilterMemory(), 0u);
}

TEST_P(DbIndexTypeTest, ReconfigureToEveryOtherType) {
  ScratchDir dir("dbreconf");
  DBOptions options = SmallDbOptions();
  options.index_type = GetParam();
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));
  std::vector<Key> keys = RandomGapKeys(2000, 81);
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());

  std::string value;
  for (IndexType target : kAllIndexTypes) {
    ASSERT_LILSM_OK(db->ReconfigureIndexes(
        target, IndexConfig::FromPositionBoundary(16)));
    for (size_t i = 0; i < keys.size(); i += 37) {
      SCOPED_TRACE(std::string("after reconfigure to ") +
                   IndexTypeName(target));
      ASSERT_LILSM_OK(db->Get(keys[i], &value));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, DbIndexTypeTest, ::testing::ValuesIn(kAllIndexTypes),
    [](const ::testing::TestParamInfo<IndexType>& info) {
      return std::string(IndexTypeName(info.param));
    });

TEST(DbLevelGranularityTest, LevelModelsAnswerLookups) {
  ScratchDir dir("dblevel");
  DBOptions options = SmallDbOptions();
  options.index_granularity = IndexGranularity::kLevel;
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));

  std::vector<Key> keys = RandomGapKeys(4000, 91);
  Random rnd(17);
  for (size_t i = keys.size(); i > 1; i--) {
    std::swap(keys[i - 1], keys[rnd.Uniform(i)]);
  }
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());

  std::string value;
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Get(key, &value));
    ASSERT_EQ(value, ValueFor(key, 0));
  }
  // Level models must actually have been built and be cheaper than
  // per-file indexes on the same tree.
  const size_t level_memory = db->TotalIndexMemory();
  EXPECT_GT(level_memory, 0u);
  db->SetIndexGranularity(IndexGranularity::kFile);
  const size_t file_memory = db->TotalIndexMemory();
  EXPECT_LE(level_memory, file_memory * 2);  // sanity: same order or less
  EXPECT_GT(db->stats()->TimerCount(Timer::kLevelIndexBuild), 0u);
}

TEST(DbStatsTest, LookupCountersTrackOperations) {
  ScratchDir dir("dbstats");
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(SmallDbOptions(), dir.path() + "/db", &db));
  for (Key key = 0; key < 2000; key++) {
    ASSERT_LILSM_OK(db->Put(key * 10, ValueFor(key, 0)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());
  db->stats()->Reset();

  std::string value;
  for (Key key = 0; key < 100; key++) {
    ASSERT_LILSM_OK(db->Get(key * 10, &value));
  }
  EXPECT_EQ(db->stats()->Count(Counter::kPointLookups), 100u);
  EXPECT_GT(db->stats()->TimerCount(Timer::kIndexPredict), 0u);
  EXPECT_GT(db->stats()->TimerCount(Timer::kDiskRead), 0u);
  EXPECT_GT(db->stats()->TimerCount(Timer::kBinarySearch), 0u);
}

TEST(DbBlockedFormatTest, ClassicFormatCrossCheck) {
  // The block-based (classic LevelDB) substrate must agree with the
  // segmented format on the same workload.
  ScratchDir dir("dbblocked");
  DBOptions options = SmallDbOptions();
  options.table_format = TableFormat::kBlocked;
  std::unique_ptr<DB> db;
  ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/db", &db));

  std::map<Key, std::string> model;
  std::vector<Key> keys = RandomGapKeys(3000, 101);
  for (Key key : keys) {
    const std::string value = ValueFor(key, 0);
    ASSERT_LILSM_OK(db->Put(key, value));
    model[key] = value;
  }
  ASSERT_LILSM_OK(db->FlushMemTable());
  std::string value;
  for (const auto& [key, expected] : model) {
    ASSERT_LILSM_OK(db->Get(key, &value));
    ASSERT_EQ(value, expected);
  }
  auto iter = db->NewIterator();
  size_t n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
  EXPECT_EQ(n, model.size());
}

}  // namespace
}  // namespace lilsm
