// Guards the index-type registry against drift: adding an IndexType
// enumerator without registering it in kAllIndexTypes (or without a
// printable, parseable name) must fail this suite at compile or run time.
#include <cstddef>
#include <set>
#include <string>

#include "gtest/gtest.h"
#include "index/index.h"

namespace lilsm {
namespace {

// IndexType enumerators are assigned densely from 0, so the count of
// registered types must equal one past the last enumerator. Extending the
// enum without extending kAllIndexTypes breaks this at compile time.
constexpr size_t kNumIndexTypes =
    sizeof(kAllIndexTypes) / sizeof(kAllIndexTypes[0]);
static_assert(kNumIndexTypes ==
                  static_cast<size_t>(IndexType::kRMI) + 1,
              "kAllIndexTypes does not cover every IndexType enumerator; "
              "register the new type (and its name) in index.cc");

static_assert(static_cast<uint8_t>(IndexType::kFencePointer) == 0,
              "IndexType enumerators must stay dense from 0: benches use "
              "the value as a benchmark::State range argument");

TEST(BuildSanityTest, AllIndexTypesAreDistinct) {
  std::set<IndexType> seen(std::begin(kAllIndexTypes),
                           std::end(kAllIndexTypes));
  EXPECT_EQ(seen.size(), kNumIndexTypes)
      << "kAllIndexTypes contains a duplicate enumerator";
}

TEST(BuildSanityTest, EveryTypeHasAUniqueName) {
  std::set<std::string> names;
  for (IndexType type : kAllIndexTypes) {
    std::string name = IndexTypeName(type);
    EXPECT_NE(name, "unknown")
        << "IndexTypeName() missing a switch case for enumerator "
        << static_cast<int>(type);
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate index name: " << name;
  }
}

TEST(BuildSanityTest, NamesRoundTripThroughParse) {
  for (IndexType type : kAllIndexTypes) {
    IndexType parsed;
    ASSERT_TRUE(ParseIndexType(IndexTypeName(type), &parsed))
        << "ParseIndexType rejects the canonical name "
        << IndexTypeName(type);
    EXPECT_EQ(parsed, type)
        << "name " << IndexTypeName(type)
        << " parses to a different type";
  }
}

TEST(BuildSanityTest, ParseRejectsUnknownNames) {
  IndexType parsed;
  EXPECT_FALSE(ParseIndexType("", &parsed));
  EXPECT_FALSE(ParseIndexType("no-such-index", &parsed));
}

TEST(BuildSanityTest, EveryTypeConstructs) {
  for (IndexType type : kAllIndexTypes) {
    auto index = CreateIndex(type);
    ASSERT_NE(index, nullptr)
        << "CreateIndex returned null for " << IndexTypeName(type);
    EXPECT_EQ(index->type(), type);
  }
}

}  // namespace
}  // namespace lilsm
