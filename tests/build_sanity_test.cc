// Build-environment drift guards. Two concerns share this suite:
//  1. The index-type registry: adding an IndexType enumerator without
//     registering it in kAllIndexTypes (or without a printable, parseable
//     name) must fail at compile or run time.
//  2. The thread-safety toolchain: the annotation macros must expand to
//     real attributes under clang (so -Wthread-safety bites) and to
//     nothing under gcc, and the Mutex/CondVar wrappers plus
//     LILSM_CHECK/LILSM_ASSERT must behave per their contracts.
#include <cstddef>
#include <set>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "index/index.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace lilsm {
namespace {

// IndexType enumerators are assigned densely from 0, so the count of
// registered types must equal one past the last enumerator. Extending the
// enum without extending kAllIndexTypes breaks this at compile time.
constexpr size_t kNumIndexTypes =
    sizeof(kAllIndexTypes) / sizeof(kAllIndexTypes[0]);
static_assert(kNumIndexTypes ==
                  static_cast<size_t>(IndexType::kRMI) + 1,
              "kAllIndexTypes does not cover every IndexType enumerator; "
              "register the new type (and its name) in index.cc");

static_assert(static_cast<uint8_t>(IndexType::kFencePointer) == 0,
              "IndexType enumerators must stay dense from 0: benches use "
              "the value as a benchmark::State range argument");

TEST(BuildSanityTest, AllIndexTypesAreDistinct) {
  std::set<IndexType> seen(std::begin(kAllIndexTypes),
                           std::end(kAllIndexTypes));
  EXPECT_EQ(seen.size(), kNumIndexTypes)
      << "kAllIndexTypes contains a duplicate enumerator";
}

TEST(BuildSanityTest, EveryTypeHasAUniqueName) {
  std::set<std::string> names;
  for (IndexType type : kAllIndexTypes) {
    std::string name = IndexTypeName(type);
    EXPECT_NE(name, "unknown")
        << "IndexTypeName() missing a switch case for enumerator "
        << static_cast<int>(type);
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate index name: " << name;
  }
}

TEST(BuildSanityTest, NamesRoundTripThroughParse) {
  for (IndexType type : kAllIndexTypes) {
    IndexType parsed;
    ASSERT_TRUE(ParseIndexType(IndexTypeName(type), &parsed))
        << "ParseIndexType rejects the canonical name "
        << IndexTypeName(type);
    EXPECT_EQ(parsed, type)
        << "name " << IndexTypeName(type)
        << " parses to a different type";
  }
}

TEST(BuildSanityTest, ParseRejectsUnknownNames) {
  IndexType parsed;
  EXPECT_FALSE(ParseIndexType("", &parsed));
  EXPECT_FALSE(ParseIndexType("no-such-index", &parsed));
}

TEST(BuildSanityTest, EveryTypeConstructs) {
  for (IndexType type : kAllIndexTypes) {
    auto index = CreateIndex(type);
    ASSERT_NE(index, nullptr)
        << "CreateIndex returned null for " << IndexTypeName(type);
    EXPECT_EQ(index->type(), type);
  }
}

// --- Thread-safety annotation + invariant-macro sanity -------------------
//
// The locking surface relies on src/util/thread_annotations.h expanding to
// real attributes under clang (so -Wthread-safety checks GUARDED_BY /
// REQUIRES) and to nothing under gcc. A toolchain or macro regression that
// silently disabled the analysis would make every annotation decorative;
// this pins the expansion per compiler.

#if defined(__clang__)
static_assert(LILSM_THREAD_SAFETY_ANALYSIS_ENABLED == 1,
              "clang builds must have thread-safety attributes active: "
              "the -Wthread-safety CI gate depends on it");
#else
static_assert(LILSM_THREAD_SAFETY_ANALYSIS_ENABLED == 0,
              "non-clang builds must compile the annotations away");
#endif

TEST(BuildSanityTest, AnnotationMacrosMatchCompiler) {
#if defined(__clang__)
  EXPECT_EQ(LILSM_THREAD_SAFETY_ANALYSIS_ENABLED, 1);
#else
  EXPECT_EQ(LILSM_THREAD_SAFETY_ANALYSIS_ENABLED, 0);
#endif
}

TEST(BuildSanityTest, MutexAndCondVarBehave) {
  Mutex mu;
  CondVar cv(&mu);
  int value = 0;    // guarded by mu (GUARDED_BY only attaches to members)
  bool ready = false;

  std::thread t([&] {
    MutexLock lock(&mu);
    value = 42;
    ready = true;
    cv.Signal();
  });
  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait();
    EXPECT_EQ(value, 42);
  }
  t.join();

  EXPECT_TRUE(mu.TryLock());
  mu.AssertHeld();
  EXPECT_FALSE(mu.TryLock());  // std::mutex: second try-lock must fail
  mu.Unlock();
}

TEST(BuildSanityTest, SharedMutexBehaves) {
  SharedMutex mu;
  {
    ReaderMutexLock r1(&mu);
    EXPECT_TRUE(mu.TryLockShared());  // readers share
    mu.UnlockShared();
    EXPECT_FALSE(mu.TryLock());  // writer excluded while read-held
  }
  {
    WriterMutexLock w(&mu);
    EXPECT_FALSE(mu.TryLockShared());  // readers excluded while write-held
  }
}

TEST(BuildSanityTest, CheckMacrosBehave) {
  int evaluations = 0;
  auto count = [&evaluations] {
    evaluations++;
    return true;
  };
  LILSM_CHECK(count());
  EXPECT_EQ(evaluations, 1);  // LILSM_CHECK always evaluates

  LILSM_ASSERT(count());
#ifdef NDEBUG
  EXPECT_EQ(evaluations, 1);  // compiled out: condition not evaluated
#else
  EXPECT_EQ(evaluations, 2);
#endif
}

#if GTEST_HAS_DEATH_TEST
TEST(BuildSanityDeathTest, CheckFailureAbortsWithLocation) {
  EXPECT_DEATH(LILSM_CHECK(1 + 1 == 3),
               "build_sanity_test.cc.*LILSM_CHECK failed: 1 \\+ 1 == 3");
}
#endif

}  // namespace
}  // namespace lilsm
