// POSIX Env: file creation, pread, sequential reads, rename, listing.
#include "util/env.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>

#include "tests/test_util.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

TEST(EnvTest, WriteThenReadWholeFile) {
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  const std::string payload(100000, 'q');
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), payload, fname));
  std::string read_back;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &read_back));
  EXPECT_EQ(read_back, payload);
}

TEST(EnvTest, RandomAccessReadsAtOffsets) {
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  std::string payload;
  for (int i = 0; i < 1000; i++) payload += std::to_string(i % 10);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), payload, fname));

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(fname, &file));
  char scratch[64];
  Slice result;
  ASSERT_LILSM_OK(file->Read(10, 5, &result, scratch));
  EXPECT_EQ(result.ToString(), payload.substr(10, 5));
  // Read past EOF returns the available bytes.
  ASSERT_LILSM_OK(file->Read(payload.size() - 3, 10, &result, scratch));
  EXPECT_EQ(result.size(), 3u);
}

TEST(EnvTest, SequentialReadAndSkip) {
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "0123456789", fname));
  std::unique_ptr<SequentialFile> file;
  ASSERT_LILSM_OK(Env::Default()->NewSequentialFile(fname, &file));
  char scratch[16];
  Slice result;
  ASSERT_LILSM_OK(file->Read(3, &result, scratch));
  EXPECT_EQ(result.ToString(), "012");
  ASSERT_LILSM_OK(file->Skip(4));
  ASSERT_LILSM_OK(file->Read(3, &result, scratch));
  EXPECT_EQ(result.ToString(), "789");
}

TEST(EnvTest, MissingFileIsNotFound) {
  std::unique_ptr<RandomAccessFile> file;
  Status s = Env::Default()->NewRandomAccessFile("/tmp/lilsm_no_such_file",
                                                 &file);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(Env::Default()->FileExists("/tmp/lilsm_no_such_file"));
}

TEST(EnvTest, RenameReplacesTarget) {
  ScratchDir dir("env");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "new", dir.file("a")));
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "old", dir.file("b")));
  ASSERT_LILSM_OK(Env::Default()->RenameFile(dir.file("a"), dir.file("b")));
  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), dir.file("b"), &contents));
  EXPECT_EQ(contents, "new");
  EXPECT_FALSE(Env::Default()->FileExists(dir.file("a")));
}

TEST(EnvTest, GetChildrenListsCreatedFiles) {
  ScratchDir dir("env");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "x", dir.file("one")));
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "y", dir.file("two")));
  std::vector<std::string> children;
  ASSERT_LILSM_OK(Env::Default()->GetChildren(dir.path(), &children));
  int found = 0;
  for (const std::string& c : children) {
    if (c == "one" || c == "two") found++;
  }
  EXPECT_EQ(found, 2);
}

TEST(EnvTest, GetFileSize) {
  ScratchDir dir("env");
  ASSERT_LILSM_OK(
      WriteStringToFile(Env::Default(), std::string(1234, 'a'), dir.file("f")));
  uint64_t size = 0;
  ASSERT_LILSM_OK(Env::Default()->GetFileSize(dir.file("f"), &size));
  EXPECT_EQ(size, 1234u);
}

/// Wraps a RandomAccessFile and serves at most `cap` bytes per Read call,
/// mimicking a pread that returns short (signal, page boundary, NFS).
class ShortReadFile : public RandomAccessFile {
 public:
  ShortReadFile(RandomAccessFile* base, size_t cap)
      : base_(base), cap_(cap) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    calls_++;
    return base_->Read(offset, std::min(n, cap_), result, scratch);
  }

  mutable int calls_ = 0;

 private:
  RandomAccessFile* const base_;
  const size_t cap_;
};

/// A file whose reads always fail, for batch error propagation.
class FailingFile : public RandomAccessFile {
 public:
  Status Read(uint64_t, size_t, Slice*, char*) const override {
    return Status::IOError("failing file", "injected");
  }
};

TEST(EnvTest, FullyReadLoopsOverShortReads) {
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  std::string payload;
  for (int i = 0; i < 1000; i++) payload += static_cast<char>('a' + i % 26);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), payload, fname));

  std::unique_ptr<RandomAccessFile> base;
  ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(fname, &base));
  ShortReadFile file(base.get(), 7);

  // A 100-byte span takes ceil(100/7) = 15 partial reads to assemble.
  char scratch[128];
  Slice result;
  ASSERT_LILSM_OK(FullyRead(&file, 50, 100, &result, scratch));
  EXPECT_EQ(result.ToString(), payload.substr(50, 100));
  EXPECT_EQ(file.calls_, 15);

  // EOF inside the range still reports the available bytes, not an error.
  ASSERT_LILSM_OK(FullyRead(&file, payload.size() - 3, 100, &result, scratch));
  EXPECT_EQ(result.ToString(), payload.substr(payload.size() - 3));
}

TEST(EnvTest, PosixReadAssemblesFullSpans) {
  // The pread loop in PosixEnv must return the whole requested range in
  // one Read call (short preads are retried internally), because every
  // table reader sizes its parse off result.size().
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  const std::string payload(256 << 10, 'p');
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), payload, fname));
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(fname, &file));
  std::string scratch(payload.size(), '\0');
  Slice result;
  ASSERT_LILSM_OK(file->Read(0, payload.size(), &result, scratch.data()));
  EXPECT_EQ(result.size(), payload.size());
}

TEST(EnvTest, ReadBatchMatchesDirectReads) {
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  std::string payload;
  for (int i = 0; i < 5000; i++) payload += static_cast<char>('A' + i % 23);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), payload, fname));

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(fname, &file));

  const size_t kSpans[][2] = {
      {0, 100}, {4000, 900}, {1234, 1}, {999, 2048}, {4995, 50}};
  const size_t kNumSpans = sizeof(kSpans) / sizeof(kSpans[0]);
  std::vector<ReadRequest> reqs(kNumSpans);
  std::vector<std::string> scratch(kNumSpans);
  auto batch = Env::Default()->NewReadBatch(/*io_depth=*/4);
  for (size_t i = 0; i < kNumSpans; i++) {
    scratch[i].resize(kSpans[i][1]);
    reqs[i].file = file.get();
    reqs[i].offset = kSpans[i][0];
    reqs[i].n = kSpans[i][1];
    reqs[i].scratch = scratch[i].data();
    batch->Add(&reqs[i]);
  }
  ASSERT_LILSM_OK(batch->Wait());
  for (size_t i = 0; i < kNumSpans; i++) {
    ASSERT_LILSM_OK(reqs[i].status);
    const size_t want =
        std::min(kSpans[i][1], payload.size() - kSpans[i][0]);
    EXPECT_EQ(reqs[i].result.ToString(),
              payload.substr(kSpans[i][0], want))
        << "span " << i;
  }
}

TEST(EnvTest, ReadBatchAssemblesShortReadingFiles) {
  // Batch requests against a file that returns partial reads must still
  // produce full spans (the backend reads through FullyRead).
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  std::string payload;
  for (int i = 0; i < 2000; i++) payload += static_cast<char>('0' + i % 10);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), payload, fname));

  std::unique_ptr<RandomAccessFile> base;
  ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(fname, &base));
  ShortReadFile file(base.get(), 13);

  std::vector<ReadRequest> reqs(3);
  std::vector<std::string> scratch(3);
  auto batch = Env::Default()->NewReadBatch(/*io_depth=*/1);
  const size_t offsets[] = {0, 500, 1900};
  const size_t lens[] = {400, 1000, 300};  // The last spans EOF.
  for (size_t i = 0; i < 3; i++) {
    scratch[i].resize(lens[i]);
    reqs[i].file = &file;
    reqs[i].offset = offsets[i];
    reqs[i].n = lens[i];
    reqs[i].scratch = scratch[i].data();
    batch->Add(&reqs[i]);
  }
  ASSERT_LILSM_OK(batch->Wait());
  EXPECT_EQ(reqs[0].result.ToString(), payload.substr(0, 400));
  EXPECT_EQ(reqs[1].result.ToString(), payload.substr(500, 1000));
  EXPECT_EQ(reqs[2].result.ToString(), payload.substr(1900));  // 100 bytes
}

TEST(EnvTest, ReadBatchIsReusableAndEmptyWaitIsNoOp) {
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  const std::string payload = "0123456789abcdef";
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), payload, fname));
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(fname, &file));

  auto batch = Env::Default()->NewReadBatch(/*io_depth=*/2);
  ASSERT_LILSM_OK(batch->Wait());  // Nothing queued.

  char scratch[16];
  for (int round = 0; round < 3; round++) {
    ReadRequest req;
    req.file = file.get();
    req.offset = static_cast<uint64_t>(round) * 4;
    req.n = 4;
    req.scratch = scratch;
    batch->Add(&req);
    ASSERT_LILSM_OK(batch->Wait());
    EXPECT_EQ(req.result.ToString(),
              payload.substr(static_cast<size_t>(round) * 4, 4));
  }
}

TEST(EnvTest, ReadBatchPropagatesFirstFailure) {
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  const std::string payload(100, 'z');
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), payload, fname));
  std::unique_ptr<RandomAccessFile> good;
  ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(fname, &good));
  FailingFile bad;

  char scratch_a[32], scratch_b[32];
  ReadRequest ok_req;
  ok_req.file = good.get();
  ok_req.n = 32;
  ok_req.scratch = scratch_a;
  ReadRequest bad_req;
  bad_req.file = &bad;
  bad_req.n = 32;
  bad_req.scratch = scratch_b;

  auto batch = Env::Default()->NewReadBatch(/*io_depth=*/2);
  batch->Add(&ok_req);
  batch->Add(&bad_req);
  Status s = batch->Wait();
  EXPECT_FALSE(s.ok());           // Batch-level: the first failure.
  EXPECT_TRUE(ok_req.status.ok());  // Per-request outcomes stay distinct.
  EXPECT_FALSE(bad_req.status.ok());
  EXPECT_EQ(ok_req.result.ToString(), payload.substr(0, 32));
}

// Injected write/read functions for the FullyWrite/FullyReadFd loops.
// They are plain function pointers (not std::function), so the fault
// schedule lives in file-static state.
struct FaultySyscalls {
  static int write_calls;
  static int read_calls;

  // At most 3 bytes per call; every 4th call fails with EINTR first.
  static ssize_t ShortWrite(int fd, const void* buf, size_t n) {
    if (++write_calls % 4 == 0) {
      errno = EINTR;
      return -1;
    }
    return ::write(fd, buf, std::min<size_t>(n, 3));
  }

  static ssize_t ShortRead(int fd, void* buf, size_t n) {
    if (++read_calls % 5 == 0) {
      errno = EINTR;
      return -1;
    }
    return ::read(fd, buf, std::min<size_t>(n, 3));
  }
};

int FaultySyscalls::write_calls = 0;
int FaultySyscalls::read_calls = 0;

TEST(EnvTest, FullyWriteSurvivesShortWritesAndEintr) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string payload;
  for (int i = 0; i < 500; i++) payload += static_cast<char>('A' + i % 26);

  FaultySyscalls::write_calls = 0;
  FaultySyscalls::read_calls = 0;
  // The whole payload fits in the pipe buffer, so 3-bytes-per-call plus
  // periodic EINTR is the only obstacle; FullyWrite must grind through.
  ASSERT_LILSM_OK(FullyWrite(fds[1], payload.data(), payload.size(),
                             &FaultySyscalls::ShortWrite));
  EXPECT_GT(FaultySyscalls::write_calls,
            static_cast<int>(payload.size() / 3));
  ::close(fds[1]);

  // And FullyReadFd must reassemble it through the same kind of faults.
  std::string got(payload.size(), '\0');
  size_t n = 0;
  ASSERT_LILSM_OK(FullyReadFd(fds[0], got.data(), got.size(), &n,
                              &FaultySyscalls::ShortRead));
  EXPECT_EQ(n, payload.size());
  EXPECT_EQ(got, payload);
  ::close(fds[0]);
}

TEST(EnvTest, FullyReadFdReportsEofShortCount) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_LILSM_OK(FullyWrite(fds[1], "abc", 3));
  ::close(fds[1]);  // EOF after 3 bytes
  char buf[16];
  size_t got = 0;
  // Asking for more than is ever coming is not an error: the short count
  // is how the caller detects a closed peer.
  ASSERT_LILSM_OK(FullyReadFd(fds[0], buf, sizeof(buf), &got));
  EXPECT_EQ(got, 3u);
  EXPECT_EQ(Slice(buf, got).ToString(), "abc");
  ::close(fds[0]);
}

TEST(EnvTest, FullyWriteSurfacesRealErrors) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);  // no reader: writes fail with EPIPE
  ::signal(SIGPIPE, SIG_IGN);
  char byte = 'x';
  Status s = FullyWrite(fds[1], &byte, 1);
  EXPECT_TRUE(s.IsIOError());
  ::close(fds[1]);
}

TEST(EnvTest, NowNanosIsMonotone) {
  Env* env = Env::Default();
  uint64_t prev = env->NowNanos();
  for (int i = 0; i < 100; i++) {
    const uint64_t now = env->NowNanos();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace lilsm
