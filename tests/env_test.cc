// POSIX Env: file creation, pread, sequential reads, rename, listing.
#include "util/env.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

TEST(EnvTest, WriteThenReadWholeFile) {
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  const std::string payload(100000, 'q');
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), payload, fname));
  std::string read_back;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), fname, &read_back));
  EXPECT_EQ(read_back, payload);
}

TEST(EnvTest, RandomAccessReadsAtOffsets) {
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  std::string payload;
  for (int i = 0; i < 1000; i++) payload += std::to_string(i % 10);
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), payload, fname));

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_LILSM_OK(Env::Default()->NewRandomAccessFile(fname, &file));
  char scratch[64];
  Slice result;
  ASSERT_LILSM_OK(file->Read(10, 5, &result, scratch));
  EXPECT_EQ(result.ToString(), payload.substr(10, 5));
  // Read past EOF returns the available bytes.
  ASSERT_LILSM_OK(file->Read(payload.size() - 3, 10, &result, scratch));
  EXPECT_EQ(result.size(), 3u);
}

TEST(EnvTest, SequentialReadAndSkip) {
  ScratchDir dir("env");
  const std::string fname = dir.file("data");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "0123456789", fname));
  std::unique_ptr<SequentialFile> file;
  ASSERT_LILSM_OK(Env::Default()->NewSequentialFile(fname, &file));
  char scratch[16];
  Slice result;
  ASSERT_LILSM_OK(file->Read(3, &result, scratch));
  EXPECT_EQ(result.ToString(), "012");
  ASSERT_LILSM_OK(file->Skip(4));
  ASSERT_LILSM_OK(file->Read(3, &result, scratch));
  EXPECT_EQ(result.ToString(), "789");
}

TEST(EnvTest, MissingFileIsNotFound) {
  std::unique_ptr<RandomAccessFile> file;
  Status s = Env::Default()->NewRandomAccessFile("/tmp/lilsm_no_such_file",
                                                 &file);
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(Env::Default()->FileExists("/tmp/lilsm_no_such_file"));
}

TEST(EnvTest, RenameReplacesTarget) {
  ScratchDir dir("env");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "new", dir.file("a")));
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "old", dir.file("b")));
  ASSERT_LILSM_OK(Env::Default()->RenameFile(dir.file("a"), dir.file("b")));
  std::string contents;
  ASSERT_LILSM_OK(ReadFileToString(Env::Default(), dir.file("b"), &contents));
  EXPECT_EQ(contents, "new");
  EXPECT_FALSE(Env::Default()->FileExists(dir.file("a")));
}

TEST(EnvTest, GetChildrenListsCreatedFiles) {
  ScratchDir dir("env");
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "x", dir.file("one")));
  ASSERT_LILSM_OK(WriteStringToFile(Env::Default(), "y", dir.file("two")));
  std::vector<std::string> children;
  ASSERT_LILSM_OK(Env::Default()->GetChildren(dir.path(), &children));
  int found = 0;
  for (const std::string& c : children) {
    if (c == "one" || c == "two") found++;
  }
  EXPECT_EQ(found, 2);
}

TEST(EnvTest, GetFileSize) {
  ScratchDir dir("env");
  ASSERT_LILSM_OK(
      WriteStringToFile(Env::Default(), std::string(1234, 'a'), dir.file("f")));
  uint64_t size = 0;
  ASSERT_LILSM_OK(Env::Default()->GetFileSize(dir.file("f"), &size));
  EXPECT_EQ(size, 1234u);
}

TEST(EnvTest, NowNanosIsMonotone) {
  Env* env = Env::Default();
  uint64_t prev = env->NowNanos();
  for (int i = 0; i < 100; i++) {
    const uint64_t now = env->NowNanos();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace lilsm
