// Slice view semantics and Status construction/classification.
#include "util/slice.h"
#include "util/status.h"

#include <gtest/gtest.h>

namespace lilsm {
namespace {

TEST(SliceTest, BasicAccessors) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s[0], 'h');
  EXPECT_EQ(s.ToString(), "hello");
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
  s.remove_prefix(4);
  EXPECT_TRUE(s.empty());
}

TEST(SliceTest, CompareOrdersLexicographically) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);  // prefix sorts first
  EXPECT_TRUE(Slice("ab") < Slice("b"));
}

TEST(SliceTest, EqualityAndStartsWith) {
  EXPECT_TRUE(Slice("abc") == Slice("abc"));
  EXPECT_TRUE(Slice("abc") != Slice("abd"));
  EXPECT_TRUE(Slice("abcdef").starts_with(Slice("abc")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

TEST(SliceTest, EmbeddedNulBytes) {
  std::string data("a\0b", 3);
  Slice s(data);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.ToString(), data);
}

TEST(StatusTest, OkIsDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesClassifyCorrectly) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_FALSE(Status::NotFound("x").ok());
  EXPECT_FALSE(Status::NotFound("x").IsCorruption());
}

TEST(StatusTest, MessagesConcatenate) {
  Status s = Status::Corruption("table", "bad footer");
  EXPECT_EQ(s.ToString(), "Corruption: table: bad footer");
}

}  // namespace
}  // namespace lilsm
