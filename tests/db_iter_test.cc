// DBIter: tombstone suppression, version dedup, snapshot visibility.
#include "lsm/db_iter.h"

#include <gtest/gtest.h>

#include "lsm/memtable.h"
#include "lsm/merger.h"

namespace lilsm {
namespace {

std::unique_ptr<Iterator> MakeIter(MemTable* mem, SequenceNumber snapshot) {
  std::vector<std::unique_ptr<TableIterator>> children;
  children.push_back(mem->NewIterator());
  return NewDBIterator(NewMergingIterator(std::move(children)), snapshot);
}

TEST(DbIterTest, SkipsOlderVersions) {
  MemTable mem;
  mem.Add(1, kTypeValue, 10, "v1");
  mem.Add(2, kTypeValue, 10, "v2");
  auto iter = MakeIter(&mem, kMaxSequenceNumber);
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "v2");
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST(DbIterTest, TombstoneHidesKeyAndOlderVersions) {
  MemTable mem;
  mem.Add(1, kTypeValue, 10, "v1");
  mem.Add(2, kTypeDeletion, 10, "");
  mem.Add(3, kTypeValue, 20, "w");
  auto iter = MakeIter(&mem, kMaxSequenceNumber);
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), 20u);
  iter->Next();
  EXPECT_FALSE(iter->Valid());
}

TEST(DbIterTest, ResurrectedKeyIsVisible) {
  MemTable mem;
  mem.Add(1, kTypeValue, 10, "v1");
  mem.Add(2, kTypeDeletion, 10, "");
  mem.Add(3, kTypeValue, 10, "v3");
  auto iter = MakeIter(&mem, kMaxSequenceNumber);
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "v3");
}

TEST(DbIterTest, SnapshotHidesNewerWrites) {
  MemTable mem;
  mem.Add(1, kTypeValue, 10, "v1");
  mem.Add(5, kTypeValue, 10, "v5");
  mem.Add(6, kTypeValue, 20, "w6");
  auto iter = MakeIter(&mem, /*snapshot=*/3);
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), 10u);
  EXPECT_EQ(iter->value().ToString(), "v1");
  iter->Next();
  EXPECT_FALSE(iter->Valid());  // key 20 written after the snapshot
}

TEST(DbIterTest, SeekLandsOnLiveKeys) {
  MemTable mem;
  for (Key k = 0; k < 50; k++) {
    mem.Add(k + 1, kTypeValue, k * 10, "v");
  }
  mem.Add(100, kTypeDeletion, 200, "");
  auto iter = MakeIter(&mem, kMaxSequenceNumber);
  iter->Seek(195);
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key(), 210u);  // 200 is deleted
  iter->Seek(491);
  EXPECT_FALSE(iter->Valid());
}

}  // namespace
}  // namespace lilsm
