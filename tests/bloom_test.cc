// Bloom filter: zero false negatives, bounded false positives.
#include "bloom/bloom.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "util/coding.h"

namespace lilsm {
namespace {

Slice KeySlice(uint64_t k, char* buf) {
  EncodeFixed64(buf, k);
  return Slice(buf, 8);
}

TEST(BloomTest, EmptyFilterMatchesEverything) {
  BloomFilterReader reader{Slice()};
  char buf[8];
  EXPECT_TRUE(reader.KeyMayMatch(KeySlice(1, buf)));
}

TEST(BloomTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  char buf[8];
  for (uint64_t k = 0; k < 10000; k++) {
    builder.AddKey(KeySlice(k * 3, buf));
  }
  std::string filter;
  builder.Finish(&filter);
  BloomFilterReader reader{Slice(filter)};
  for (uint64_t k = 0; k < 10000; k++) {
    ASSERT_TRUE(reader.KeyMayMatch(KeySlice(k * 3, buf))) << k;
  }
}

TEST(BloomTest, FalsePositiveRateNearOnePercent) {
  BloomFilterBuilder builder(10);
  char buf[8];
  const uint64_t n = 20000;
  for (uint64_t k = 0; k < n; k++) {
    builder.AddKey(KeySlice(k * 7, buf));
  }
  std::string filter;
  builder.Finish(&filter);
  BloomFilterReader reader{Slice(filter)};
  int false_positives = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; i++) {
    // Keys disjoint from the inserted set (odd keys; inserted are k*7...
    // use a far offset instead).
    if (reader.KeyMayMatch(KeySlice(1'000'000'000ull + i, buf))) {
      false_positives++;
    }
  }
  const double fpr = static_cast<double>(false_positives) / probes;
  EXPECT_LT(fpr, 0.025) << "10 bits/key should give ~1% FPR";
}

TEST(BloomTest, FilterSizeTracksBitsPerKey) {
  char buf[8];
  std::string small, large;
  {
    BloomFilterBuilder builder(4);
    for (uint64_t k = 0; k < 1000; k++) builder.AddKey(KeySlice(k, buf));
    builder.Finish(&small);
  }
  {
    BloomFilterBuilder builder(16);
    for (uint64_t k = 0; k < 1000; k++) builder.AddKey(KeySlice(k, buf));
    builder.Finish(&large);
  }
  EXPECT_GT(large.size(), small.size() * 3);
}

TEST(BloomTest, ZeroBitsDisablesFilter) {
  BloomFilterBuilder builder(0);
  char buf[8];
  builder.AddKey(KeySlice(1, buf));
  std::string filter;
  builder.Finish(&filter);
  EXPECT_TRUE(filter.empty());
}

TEST(BloomTest, FinishResetsBuilder) {
  BloomFilterBuilder builder(10);
  char buf[8];
  builder.AddKey(KeySlice(1, buf));
  std::string filter;
  builder.Finish(&filter);
  EXPECT_EQ(builder.NumKeys(), 0u);
}

}  // namespace
}  // namespace lilsm
