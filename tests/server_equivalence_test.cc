// Server/library equivalence: N concurrent clients driving deterministic
// per-client op sequences through lilsm_server must produce bit-identical
// transcripts (every Get/MultiGet result, every status, every snapshot
// read) to the same sequences run serially against an in-process DB.
// Each client owns a disjoint key stripe on top of a shared immutable
// preload, so per-client outcomes are independent of interleaving and the
// comparison is exact. TSan CI runs this suite: the server's event-loop /
// worker handoff must be race-free under real concurrent clients.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "lsm/db.h"
#include "server/server.h"
#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

constexpr int kClients = 4;
constexpr Key kSharedKeys = 256;   // immutable preload, read by everyone
constexpr Key kStripeKeys = 96;    // per-client private keys
constexpr int kOpsPerClient = 120;

constexpr uint32_t kValueSize = 40;  // flushed tables need fixed geometry

Key StripeBase(int client) { return static_cast<Key>(client + 1) << 32; }

std::string SharedValue(Key k) { return DeriveValue(k, kValueSize); }

std::string StripeValue(int client, Key k, int version) {
  std::string value = "c" + std::to_string(client) + "k" +
                      std::to_string(k) + "v" + std::to_string(version);
  value.resize(kValueSize, '.');
  return value;
}

DBOptions EquivalenceDbOptions() {
  DBOptions options;
  options.write_buffer_size = 64 << 10;  // force flushes mid-sequence
  options.sstable_target_size = 32 << 10;
  options.l0_compaction_trigger = 2;
  options.value_size = kValueSize;
  options.group_commit = true;
  return options;
}

/// The abstract op surface: implemented by a Client-backed driver (over
/// the socket) and a DB-backed driver (in-process). Each records the
/// byte-exact outcome of every operation into a transcript.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual void Put(Key key, const std::string& value) = 0;
  virtual void Delete(Key key) = 0;
  virtual void Get(Key key) = 0;
  virtual void MultiGet(const std::vector<Key>& keys) = 0;
  virtual void SnapshotBegin() = 0;  // pin a view
  virtual void SnapshotGet(Key key) = 0;
  virtual void SnapshotMultiGet(const std::vector<Key>& keys) = 0;
  virtual void SnapshotEnd() = 0;  // release it

  const std::string& transcript() const { return transcript_; }

 protected:
  void Record(const char* op, Key key, const Status& status,
              const std::string& value) {
    char head[64];
    std::snprintf(head, sizeof(head), "%s(%llx)=", op,
                  static_cast<unsigned long long>(key));
    transcript_ += head;
    transcript_ += status.ToString();
    if (status.ok()) {
      transcript_ += ":";
      transcript_ += value;
    }
    transcript_ += "\n";
  }

  std::string transcript_;
};

class ClientDriver : public Driver {
 public:
  explicit ClientDriver(const std::string& socket_path) {
    Status s = Client::Connect(socket_path, &client_);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  void Put(Key key, const std::string& value) override {
    Record("put", key, client_->Put(key, value), "");
  }
  void Delete(Key key) override {
    Record("del", key, client_->Delete(key), "");
  }
  void Get(Key key) override { GetAt(ClientReadOptions(), "get", key); }
  void MultiGet(const std::vector<Key>& keys) override {
    MultiGetAt(ClientReadOptions(), "mget", keys);
  }
  void SnapshotBegin() override {
    Status s = client_->NewSnapshot(&snapshot_id_);
    Record("snap", 0, s, "");
  }
  void SnapshotGet(Key key) override {
    ClientReadOptions options;
    options.snapshot_id = snapshot_id_;
    GetAt(options, "sget", key);
  }
  void SnapshotMultiGet(const std::vector<Key>& keys) override {
    ClientReadOptions options;
    options.snapshot_id = snapshot_id_;
    MultiGetAt(options, "smget", keys);
  }
  void SnapshotEnd() override {
    Record("unsnap", 0, client_->ReleaseSnapshot(snapshot_id_), "");
    snapshot_id_ = 0;
  }

 private:
  void GetAt(const ClientReadOptions& options, const char* op, Key key) {
    std::string value;
    Status s = client_->Get(options, key, &value);
    Record(op, key, s, value);
  }
  void MultiGetAt(const ClientReadOptions& options, const char* op,
                  const std::vector<Key>& keys) {
    std::vector<std::string> values;
    std::vector<Status> statuses;
    Status s = client_->MultiGet(options, keys, &values, &statuses);
    Record(op, keys.size(), s, "");
    for (size_t i = 0; i < statuses.size(); i++) {
      Record("  #", keys[i], statuses[i],
             statuses[i].ok() ? values[i] : "");
    }
  }

  std::unique_ptr<Client> client_;
  uint64_t snapshot_id_ = 0;
};

class LibraryDriver : public Driver {
 public:
  explicit LibraryDriver(DB* db) : db_(db) {}
  ~LibraryDriver() override {
    if (snapshot_ != nullptr) db_->ReleaseSnapshot(snapshot_);
  }

  void Put(Key key, const std::string& value) override {
    Record("put", key, db_->Put(key, value), "");
  }
  void Delete(Key key) override {
    Record("del", key, db_->Delete(key), "");
  }
  void Get(Key key) override { GetAt(nullptr, "get", key); }
  void MultiGet(const std::vector<Key>& keys) override {
    MultiGetAt(nullptr, "mget", keys);
  }
  void SnapshotBegin() override {
    snapshot_ = db_->GetSnapshot();
    Record("snap", 0, Status::OK(), "");
  }
  void SnapshotGet(Key key) override { GetAt(snapshot_, "sget", key); }
  void SnapshotMultiGet(const std::vector<Key>& keys) override {
    MultiGetAt(snapshot_, "smget", keys);
  }
  void SnapshotEnd() override {
    db_->ReleaseSnapshot(snapshot_);
    snapshot_ = nullptr;
    Record("unsnap", 0, Status::OK(), "");
  }

 private:
  void GetAt(const Snapshot* snapshot, const char* op, Key key) {
    ReadOptions options;
    options.snapshot = snapshot;
    std::string value;
    Status s = db_->Get(options, key, &value);
    Record(op, key, s, value);
  }
  void MultiGetAt(const Snapshot* snapshot, const char* op,
                  const std::vector<Key>& keys) {
    ReadOptions options;
    options.snapshot = snapshot;
    std::vector<std::string> values;
    std::vector<Status> statuses;
    Status s = db_->MultiGet(options, keys, &values, &statuses);
    Record(op, keys.size(), s, "");
    for (size_t i = 0; i < statuses.size(); i++) {
      Record("  #", keys[i], statuses[i],
             statuses[i].ok() ? values[i] : "");
    }
  }

  DB* db_;
  const Snapshot* snapshot_ = nullptr;
};

/// The deterministic per-client program. Mixes private-stripe writes,
/// reads of private + shared keys, MultiGet batches spanning both, holes
/// (never-written keys), deletes, and a snapshot window that pins reads
/// across subsequent overwrites. Depends only on `client`, never on
/// timing, so every interleaving yields the same per-client transcript.
void RunClientProgram(int client, Driver* driver) {
  const Key base = StripeBase(client);
  int version = 0;
  for (int op = 0; op < kOpsPerClient; op++) {
    const Key k = base + (static_cast<Key>(op * 37) % kStripeKeys);
    switch (op % 8) {
      case 0:
        driver->Put(k, StripeValue(client, k, ++version));
        break;
      case 1:
        driver->Get(k);
        break;
      case 2: {  // batch mixing private, shared, and missing keys
        std::vector<Key> keys;
        for (int j = 0; j < 16; j++) {
          if (j % 3 == 0) {
            keys.push_back(static_cast<Key>((op + j) * 11) % kSharedKeys);
          } else if (j % 3 == 1) {
            keys.push_back(base + (static_cast<Key>(op + j) % kStripeKeys));
          } else {
            keys.push_back(base + kStripeKeys + static_cast<Key>(j));  // hole
          }
        }
        driver->MultiGet(keys);
        break;
      }
      case 3:
        driver->Put(k, StripeValue(client, k, ++version));
        break;
      case 4: {  // snapshot window: pin, overwrite, read back, release
        driver->Put(k, StripeValue(client, k, ++version));
        driver->SnapshotBegin();
        driver->Put(k, StripeValue(client, k, ++version));
        driver->Put(k + 1, StripeValue(client, k + 1, ++version));
        driver->SnapshotGet(k);
        std::vector<Key> keys = {k, k + 1,
                                 static_cast<Key>(op) % kSharedKeys};
        driver->SnapshotMultiGet(keys);
        driver->SnapshotEnd();
        driver->Get(k);  // latest state resumes after release
        break;
      }
      case 5:
        driver->Delete(k);
        break;
      case 6:
        driver->Get(k);
        break;
      case 7: {
        std::vector<Key> keys;
        for (int j = 0; j < 8; j++) {
          keys.push_back(base + (static_cast<Key>(op * 5 + j * 13) %
                                 kStripeKeys));
        }
        driver->MultiGet(keys);
        break;
      }
    }
  }
}

void Preload(DB* db) {
  for (Key k = 0; k < kSharedKeys; k++) {
    ASSERT_LILSM_OK(db->Put(k, SharedValue(k)));
  }
}

std::string DumpAll(DB* db) {
  std::string dump;
  std::unique_ptr<Iterator> it = db->NewIterator(ReadOptions());
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    char head[32];
    std::snprintf(head, sizeof(head), "%llx=",
                  static_cast<unsigned long long>(it->key()));
    dump += head;
    dump.append(it->value().data(), it->value().size());
    dump += "\n";
  }
  return dump;
}

TEST(ServerEquivalenceTest, ConcurrentClientsMatchInProcessLibrary) {
  // --- Server run: kClients real threads, each with its own socket
  // connection, all interleaving through the epoll loop and worker pool.
  ScratchDir server_dir("server_equiv_srv");
  std::vector<std::string> server_transcripts(kClients);
  std::string server_dump;
  {
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(
        DB::Open(EquivalenceDbOptions(), server_dir.path() + "/db", &db));
    Preload(db.get());
    ServerOptions server_options;
    server_options.socket_path = server_dir.file("sock");
    std::unique_ptr<Server> server;
    ASSERT_LILSM_OK(Server::Start(db.get(), server_options, &server));

    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; c++) {
      threads.emplace_back([c, &server_options, &server_transcripts] {
        ClientDriver driver(server_options.socket_path);
        RunClientProgram(c, &driver);
        server_transcripts[c] = driver.transcript();
      });
    }
    for (std::thread& t : threads) t.join();
    server->Stop();
    server.reset();
    server_dump = DumpAll(db.get());
  }

  // --- Library run: a fresh DB, the same per-client programs executed
  // serially through the in-process API.
  ScratchDir lib_dir("server_equiv_lib");
  std::vector<std::string> lib_transcripts(kClients);
  std::string lib_dump;
  {
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(
        DB::Open(EquivalenceDbOptions(), lib_dir.path() + "/db", &db));
    Preload(db.get());
    for (int c = 0; c < kClients; c++) {
      LibraryDriver driver(db.get());
      RunClientProgram(c, &driver);
      lib_transcripts[c] = driver.transcript();
    }
    lib_dump = DumpAll(db.get());
  }

  // Bit-identical per-client transcripts: every status and value equal.
  for (int c = 0; c < kClients; c++) {
    EXPECT_EQ(server_transcripts[c], lib_transcripts[c]) << "client " << c;
  }
  // And the final database contents agree key for key, byte for byte.
  EXPECT_EQ(server_dump, lib_dump);
}

}  // namespace
}  // namespace lilsm
