// Merging iterator: ordering, newest-first tie-breaks, seeks.
#include "lsm/merger.h"

#include <gtest/gtest.h>

#include <map>

#include "lsm/memtable.h"
#include "tests/test_util.h"

namespace lilsm {
namespace {

std::unique_ptr<TableIterator> MemIter(
    std::vector<std::tuple<Key, SequenceNumber, std::string>> entries,
    std::vector<std::unique_ptr<MemTable>>* keepalive) {
  auto mem = std::make_unique<MemTable>();
  for (const auto& [key, seq, value] : entries) {
    mem->Add(seq, kTypeValue, key, value);
  }
  auto iter = mem->NewIterator();
  keepalive->push_back(std::move(mem));
  return iter;
}

TEST(MergerTest, EmptyChildren) {
  auto merged = NewMergingIterator({});
  merged->SeekToFirst();
  EXPECT_FALSE(merged->Valid());
}

TEST(MergerTest, InterleavesSourcesInKeyOrder) {
  std::vector<std::unique_ptr<MemTable>> keep;
  std::vector<std::unique_ptr<TableIterator>> children;
  children.push_back(MemIter({{10, 1, "a"}, {30, 2, "c"}}, &keep));
  children.push_back(MemIter({{20, 3, "b"}, {40, 4, "d"}}, &keep));
  auto merged = NewMergingIterator(std::move(children));

  std::vector<Key> seen;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next()) {
    seen.push_back(merged->key());
  }
  EXPECT_EQ(seen, (std::vector<Key>{10, 20, 30, 40}));
}

TEST(MergerTest, NewestVersionComesFirstOnDuplicates) {
  std::vector<std::unique_ptr<MemTable>> keep;
  std::vector<std::unique_ptr<TableIterator>> children;
  children.push_back(MemIter({{10, 1, "old"}}, &keep));
  children.push_back(MemIter({{10, 9, "new"}}, &keep));
  auto merged = NewMergingIterator(std::move(children));
  merged->SeekToFirst();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(TagSequence(merged->tag()), 9u);
  EXPECT_EQ(merged->value().ToString(), "new");
  merged->Next();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(TagSequence(merged->tag()), 1u);
}

TEST(MergerTest, SeekPositionsAllChildren) {
  std::vector<std::unique_ptr<MemTable>> keep;
  std::vector<std::unique_ptr<TableIterator>> children;
  children.push_back(MemIter({{10, 1, "a"}, {50, 2, "e"}}, &keep));
  children.push_back(MemIter({{30, 3, "c"}, {70, 4, "g"}}, &keep));
  auto merged = NewMergingIterator(std::move(children));
  merged->Seek(25);
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(merged->key(), 30u);
  merged->Seek(71);
  EXPECT_FALSE(merged->Valid());
}

TEST(MergerTest, RandomizedAgainstReference) {
  Random rnd(99);
  std::vector<std::unique_ptr<MemTable>> keep;
  std::vector<std::unique_ptr<TableIterator>> children;
  std::vector<std::pair<Key, uint64_t>> reference;  // (key, seq)
  SequenceNumber seq = 1;
  for (int src = 0; src < 5; src++) {
    std::vector<std::tuple<Key, SequenceNumber, std::string>> entries;
    for (int i = 0; i < 200; i++) {
      const Key key = rnd.Uniform(500);
      entries.emplace_back(key, seq, "v");
      reference.emplace_back(key, seq);
      seq++;
    }
    children.push_back(MemIter(entries, &keep));
  }
  std::sort(reference.begin(), reference.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second > b.second;
            });
  auto merged = NewMergingIterator(std::move(children));
  size_t i = 0;
  for (merged->SeekToFirst(); merged->Valid(); merged->Next(), i++) {
    ASSERT_LT(i, reference.size());
    ASSERT_EQ(merged->key(), reference[i].first);
    ASSERT_EQ(TagSequence(merged->tag()), reference[i].second);
  }
  EXPECT_EQ(i, reference.size());
}

}  // namespace
}  // namespace lilsm
