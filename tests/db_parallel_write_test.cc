// Parallel write path tests: group-commit equivalence against serial
// application (mixed Put/Delete/WriteBatch under 1..16 concurrent writers,
// with WAL-replay verification after reopen), the sync-upgrade regression
// (a sync=true writer joining a sync=false-led group must still get its
// fsync), range-partitioned subcompaction equivalence against the
// single-threaded merge, and the multi-job scheduler under full load.
// Run under TSan in CI (see ci.yml).
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lsm/db.h"
#include "tests/test_util.h"
#include "util/env.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 48;

DBOptions ParallelDbOptions() {
  DBOptions options;
  options.concurrency = ConcurrencyMode::kBackground;
  options.group_commit = true;
  options.write_buffer_size = 64 << 10;    // tiny: frequent switches
  options.sstable_target_size = 32 << 10;  // many small tables
  options.l0_compaction_trigger = 2;
  options.l0_slowdown_trigger = 4;
  options.l0_stop_trigger = 8;
  options.value_size = kValueSize;
  options.key_size = 24;
  // The TSan CI job reruns this suite with the shared block cache enabled
  // (db_parallel_write_test_blockcache in CMakeLists.txt) so the parallel
  // write path also races cache hits/misses/invalidation.
  if (const char* mb = std::getenv("LILSM_TEST_BLOCK_CACHE_MB")) {
    options.block_cache_bytes = std::strtoull(mb, nullptr, 10) << 20;
  }
  return options;
}

/// Writer w's i-th key: disjoint dense ranges per writer, so the final
/// state after any interleaving equals applying each writer's stream
/// serially.
Key KeyFor(uint64_t writer, uint64_t i) { return writer * 1'000'000 + i + 1; }

std::string ValueFor(Key key, uint64_t version) {
  return DeriveValue(key ^ (version * 0x9E3779B9), kValueSize);
}

/// One deterministic mutation in a writer's stream.
struct Op {
  enum Kind { kPut, kDelete, kBatch } kind;
  uint64_t slot;      // key index within the writer's stripe
  uint64_t version;   // value derivation seed
  bool sync;          // WriteOptions::sync for this call
  int batch_len;      // kBatch only: slots [slot, slot + batch_len)
};

/// The deterministic op stream for one writer: mixed Put/Delete/WriteBatch
/// with overwrites, deletes of earlier slots, and an occasional sync'd
/// call. Identical for every run with the same (writer, n).
std::vector<Op> MakeStream(uint64_t writer, int n) {
  Random rnd(0xC0FFEE + writer * 7919);
  std::vector<Op> ops;
  ops.reserve(n);
  for (int i = 0; i < n; i++) {
    Op op;
    op.slot = rnd.Uniform(static_cast<uint32_t>(n));
    op.version = 1 + rnd.Uniform(1000);
    op.sync = rnd.OneIn(16);
    op.batch_len = 0;
    const uint32_t roll = rnd.Uniform(10);
    if (roll < 6) {
      op.kind = Op::kPut;
    } else if (roll < 8) {
      op.kind = Op::kDelete;
    } else {
      op.kind = Op::kBatch;
      op.batch_len = 2 + rnd.Uniform(6);
    }
    ops.push_back(op);
  }
  return ops;
}

/// Applies one writer's stream to the DB. Returns false on any failure.
bool RunStream(DB* db, uint64_t writer, const std::vector<Op>& ops) {
  for (const Op& op : ops) {
    WriteOptions wopts;
    wopts.sync = op.sync;
    Status s;
    switch (op.kind) {
      case Op::kPut:
        s = db->Put(wopts, KeyFor(writer, op.slot),
                    ValueFor(KeyFor(writer, op.slot), op.version));
        break;
      case Op::kDelete:
        s = db->Delete(wopts, KeyFor(writer, op.slot));
        break;
      case Op::kBatch: {
        WriteBatch batch;
        for (int j = 0; j < op.batch_len; j++) {
          const Key key = KeyFor(writer, op.slot + j);
          if (j % 3 == 2) {
            batch.Delete(key);
          } else {
            batch.Put(key, ValueFor(key, op.version + j));
          }
        }
        s = db->Write(wopts, &batch);
        break;
      }
    }
    if (!s.ok()) return false;
  }
  return true;
}

/// The expected final state of one writer's stream: key -> value, or
/// nullopt for a deleted key (must be NotFound).
void ApplyToModel(uint64_t writer, const std::vector<Op>& ops,
                  std::map<Key, std::optional<std::string>>* model) {
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kPut:
        (*model)[KeyFor(writer, op.slot)] =
            ValueFor(KeyFor(writer, op.slot), op.version);
        break;
      case Op::kDelete:
        (*model)[KeyFor(writer, op.slot)] = std::nullopt;
        break;
      case Op::kBatch:
        for (int j = 0; j < op.batch_len; j++) {
          const Key key = KeyFor(writer, op.slot + j);
          if (j % 3 == 2) {
            (*model)[key] = std::nullopt;
          } else {
            (*model)[key] = ValueFor(key, op.version + j);
          }
        }
        break;
    }
  }
}

/// Asserts the DB's live contents match the model exactly: every live
/// model key present with the right value (checked via the iterator dump),
/// every deleted key NotFound (checked via Get).
void ExpectMatchesModel(
    DB* db, const std::map<Key, std::optional<std::string>>& model) {
  auto iter = db->NewIterator();
  auto it = model.begin();
  iter->SeekToFirst();
  while (iter->Valid()) {
    while (it != model.end() && !it->second.has_value()) ++it;
    ASSERT_NE(it, model.end()) << "extra key " << iter->key();
    ASSERT_EQ(iter->key(), it->first);
    ASSERT_EQ(iter->value().ToString(), *it->second) << "key " << iter->key();
    ++it;
    iter->Next();
  }
  while (it != model.end() && !it->second.has_value()) ++it;
  ASSERT_EQ(it, model.end()) << "missing key " << it->first;

  std::string value;
  for (const auto& [key, expected] : model) {
    if (!expected.has_value()) {
      ASSERT_TRUE(db->Get(key, &value).IsNotFound()) << "key " << key;
    }
  }
}

class DbParallelWriteTest : public ::testing::Test {
 protected:
  void Open(const DBOptions& options, const std::string& sub) {
    db_.reset();
    ASSERT_LILSM_OK(DB::Open(options, dir_.path() + "/" + sub, &db_));
  }

  ScratchDir dir_{"db_parallel_write"};
  std::unique_ptr<DB> db_;
};

// The core equivalence claim: with group commit on, N concurrent writers
// with disjoint key stripes produce exactly the state serial application
// of their streams would, both live and after a close/reopen WAL replay.
TEST_F(DbParallelWriteTest, GroupCommitEquivalentToSerialApplication) {
  for (int writers : {1, 4, 16, 64}) {
    DBOptions options = ParallelDbOptions();
    const std::string sub = "gc" + std::to_string(writers);
    Open(options, sub);

    const int ops_per_writer =
        writers >= 64 ? 100 : (writers >= 16 ? 400 : 1500);
    std::vector<std::vector<Op>> streams;
    std::map<Key, std::optional<std::string>> model;
    for (int w = 0; w < writers; w++) {
      streams.push_back(MakeStream(w, ops_per_writer));
      ApplyToModel(w, streams.back(), &model);
    }

    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (int w = 0; w < writers; w++) {
      threads.emplace_back([&, w] {
        if (!RunStream(db_.get(), w, streams[w])) failed.store(true);
      });
    }
    for (std::thread& t : threads) t.join();
    ASSERT_FALSE(failed.load());

    const uint64_t groups = db_->stats()->Count(Counter::kGroupCommits);
    const uint64_t served =
        db_->stats()->Count(Counter::kGroupCommitBatchSize);
    ASSERT_GT(groups, 0u);
    ASSERT_GE(served, groups);  // every group serves >= 1 writer

    ExpectMatchesModel(db_.get(), model);

    // Close without flushing: the reopened state comes from WAL replay.
    Open(options, sub);
    ExpectMatchesModel(db_.get(), model);

    // And it survives settling the tree.
    ASSERT_LILSM_OK(db_->CompactUntilStable());
    ExpectMatchesModel(db_.get(), model);
    db_.reset();
  }
}

// A gate/counting Env wrapper: blocks WAL appends while the gate is
// closed (parking a group leader mid-commit so followers can queue up
// behind it deterministically) and counts WAL fsyncs.
class GatedWalEnv : public Env {
 public:
  explicit GatedWalEnv(Env* base) : base_(base) {}

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_open_ = false;
  }
  void OpenGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_open_ = true;
    cv_.notify_all();
  }
  /// Blocks until a WAL append is parked at the closed gate.
  void AwaitBlockedAppender() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return blocked_ > 0; });
  }
  uint64_t wal_syncs() const {
    return wal_syncs_.load(std::memory_order_acquire);
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    Status s = base_->NewWritableFile(fname, result);
    if (s.ok() && fname.size() > 4 &&
        fname.compare(fname.size() - 4, 4, ".log") == 0) {
      *result = std::make_unique<GatedFile>(this, std::move(*result));
    }
    return s;
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    return base_->NewRandomAccessFile(fname, result);
  }
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    return base_->NewSequentialFile(fname, result);
  }
  bool FileExists(const std::string& fname) override {
    return base_->FileExists(fname);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return base_->GetChildren(dir, result);
  }
  Status RemoveFile(const std::string& fname) override {
    return base_->RemoveFile(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return base_->CreateDir(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return base_->RemoveDir(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return base_->GetFileSize(fname, size);
  }
  Status RenameFile(const std::string& src,
                    const std::string& target) override {
    return base_->RenameFile(src, target);
  }
  uint64_t NowNanos() override { return base_->NowNanos(); }
  void Schedule(std::function<void()> work) override {
    base_->Schedule(std::move(work));
  }

 private:
  class GatedFile : public WritableFile {
   public:
    GatedFile(GatedWalEnv* env, std::unique_ptr<WritableFile> base)
        : env_(env), base_(std::move(base)) {}
    Status Append(const Slice& data) override {
      {
        std::unique_lock<std::mutex> lock(env_->mu_);
        if (!env_->gate_open_) {
          env_->blocked_++;
          env_->cv_.notify_all();  // wake AwaitBlockedAppender
          env_->cv_.wait(lock, [this] { return env_->gate_open_; });
          env_->blocked_--;
        }
      }
      return base_->Append(data);
    }
    Status Flush() override { return base_->Flush(); }
    Status Sync() override {
      env_->wal_syncs_.fetch_add(1, std::memory_order_acq_rel);
      return base_->Sync();
    }
    Status Close() override { return base_->Close(); }

   private:
    GatedWalEnv* env_;
    std::unique_ptr<WritableFile> base_;
  };

  Env* base_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool gate_open_ = true;
  int blocked_ = 0;
  std::atomic<uint64_t> wal_syncs_{0};
};

// Regression (PR 6 bugfix): a sync=true write that joins a group whose
// leader has sync=false must still be fsync'd before it is acknowledged —
// the leader upgrades the group's sync bit to the OR of its members.
// Deterministic setup: park leader Z inside its WAL append behind a gate,
// queue A (sync=false) then B (sync=true) behind it, release the gate, and
// check B's durability plus the group accounting.
TEST_F(DbParallelWriteTest, SyncJoinerUpgradesGroupSync) {
  GatedWalEnv env(Env::Default());
  DBOptions options;  // kInline: no background work muddies the counters
  options.env = &env;
  options.group_commit = true;
  options.value_size = kValueSize;
  Open(options, "sync_upgrade");

  env.CloseGate();
  std::thread z([&] {
    ASSERT_LILSM_OK(db_->Put(WriteOptions(), 1, ValueFor(1, 1)));
  });
  env.AwaitBlockedAppender();  // Z is leader, parked mid-append

  std::atomic<bool> a_done{false}, b_done{false};
  std::thread a([&] {
    WriteOptions wopts;
    wopts.sync = false;
    ASSERT_LILSM_OK(db_->Put(wopts, 2, ValueFor(2, 1)));
    a_done.store(true);
  });
  std::thread b([&] {
    WriteOptions wopts;
    wopts.sync = true;
    ASSERT_LILSM_OK(db_->Put(wopts, 3, ValueFor(3, 1)));
    b_done.store(true);
  });
  // Give A and B time to enqueue behind the parked leader. They cannot
  // finish while the gate is closed (A leads the next group and blocks in
  // its own append), so after the sleep both are queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_FALSE(a_done.load());
  ASSERT_FALSE(b_done.load());

  env.OpenGate();
  z.join();
  a.join();
  b.join();

  // B was acknowledged => the WAL was fsync'd despite A (sync=false)
  // leading the group. Checked before any close-path syncs can run.
  ASSERT_GE(env.wal_syncs(), 1u);
  // Two groups formed: {Z} then {A, B} under A's leadership.
  ASSERT_EQ(db_->stats()->Count(Counter::kGroupCommits), 2u);
  ASSERT_EQ(db_->stats()->Count(Counter::kGroupCommitBatchSize), 3u);
  db_.reset();  // before the Env it borrows goes out of scope
}

// Range-partitioned subcompactions must produce the same logical database
// as the single-threaded merge: same iterator dump, same Gets, same
// level-model answers — only file cut points may differ.
TEST_F(DbParallelWriteTest, SubcompactionsMatchSingleThreadedMerge) {
  DBOptions base;  // kInline: both runs are deterministic
  base.write_buffer_size = 64 << 10;
  base.sstable_target_size = 16 << 10;  // many next-level files to shard on
  base.l0_compaction_trigger = 2;
  base.value_size = kValueSize;
  // Level-granularity maintained models: shard outputs must stitch into
  // the level model exactly as a single-threaded compaction's would.
  base.index_granularity = IndexGranularity::kLevel;
  base.level_model_policy = LevelModelPolicy::kCompactionMaintained;

  auto load = [&](DB* db) {
    Random rnd(42);
    for (int i = 0; i < 12000; i++) {
      const Key key = 1 + rnd.Uniform(6000);
      if (rnd.OneIn(8)) {
        ASSERT_LILSM_OK(db->Delete(key));
      } else {
        ASSERT_LILSM_OK(db->Put(key, ValueFor(key, 1 + i % 7)));
      }
    }
    ASSERT_LILSM_OK(db->FlushMemTable());
    ASSERT_LILSM_OK(db->CompactUntilStable());
  };

  DBOptions serial = base;
  serial.max_subcompactions = 1;
  Open(serial, "subc_serial");
  load(db_.get());
  ASSERT_EQ(db_->stats()->Count(Counter::kSubcompactions), 0u);
  std::vector<std::pair<Key, std::string>> expected;
  {
    auto iter = db_->NewIterator();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      expected.emplace_back(iter->key(), iter->value().ToString());
    }
  }
  ASSERT_FALSE(expected.empty());

  DBOptions sharded = base;
  sharded.max_subcompactions = 4;
  std::unique_ptr<DB> db2;
  ASSERT_LILSM_OK(DB::Open(sharded, dir_.path() + "/subc_sharded", &db2));
  load(db2.get());
  ASSERT_GT(db2->stats()->Count(Counter::kSubcompactions), 0u);

  // Identical logical contents...
  {
    auto iter = db2->NewIterator();
    size_t i = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
      ASSERT_LT(i, expected.size());
      ASSERT_EQ(iter->key(), expected[i].first);
      ASSERT_EQ(iter->value().ToString(), expected[i].second);
    }
    ASSERT_EQ(i, expected.size());
  }
  // ...and identical point-lookup answers through the stitched models.
  std::string v1, v2;
  for (Key key = 1; key <= 6000; key += 13) {
    Status s1 = db_->Get(key, &v1);
    Status s2 = db2->Get(key, &v2);
    ASSERT_EQ(s1.ok(), s2.ok()) << "key " << key;
    if (s1.ok()) {
      ASSERT_EQ(v1, v2) << "key " << key;
    }
  }

  // The sharded DB's manifest round-trips: reopen and re-verify a sample.
  db2.reset();
  ASSERT_LILSM_OK(DB::Open(sharded, dir_.path() + "/subc_sharded", &db2));
  for (Key key = 1; key <= 6000; key += 97) {
    Status s1 = db_->Get(key, &v1);
    Status s2 = db2->Get(key, &v2);
    ASSERT_EQ(s1.ok(), s2.ok()) << "key " << key;
    if (s1.ok()) {
      ASSERT_EQ(v1, v2) << "key " << key;
    }
  }
}

// The whole stack at once: group commit + concurrent background jobs +
// subcompactions, with foreground FlushMemTable barriers racing the
// writer queue. Exercised under TSan in CI.
TEST_F(DbParallelWriteTest, FullParallelStackUnderLoad) {
  DBOptions options = ParallelDbOptions();
  options.max_background_jobs = 3;
  options.max_subcompactions = 2;
  Open(options, "full_stack");

  constexpr int kWriters = 4;
  constexpr int kOps = 1200;
  std::vector<std::vector<Op>> streams;
  std::map<Key, std::optional<std::string>> model;
  for (int w = 0; w < kWriters; w++) {
    streams.push_back(MakeStream(w, kOps));
    ApplyToModel(w, streams.back(), &model);
  }

  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      if (!RunStream(db_.get(), w, streams[w])) failed.store(true);
    });
  }
  // Foreground flushes force memtable switches through the writer-queue
  // barrier while the group-commit leaders are mid-flight.
  std::thread flusher([&] {
    while (!done.load() && !failed.load()) {
      if (!db_->FlushMemTable().ok()) failed.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  for (int w = 0; w < kWriters; w++) threads[w].join();
  done.store(true);
  flusher.join();
  ASSERT_FALSE(failed.load());

  ASSERT_GT(db_->stats()->Count(Counter::kGroupCommits), 0u);
  ASSERT_LILSM_OK(db_->CompactUntilStable());
  ExpectMatchesModel(db_.get(), model);

  // Reopen: manifest + WAL replay reproduce the same state.
  Open(options, "full_stack");
  ExpectMatchesModel(db_.get(), model);
}

// The new knobs are validated like every other option.
TEST_F(DbParallelWriteTest, ValidateRejectsNonPositiveParallelism) {
  DBOptions options;
  options.max_background_jobs = 0;
  ASSERT_FALSE(options.Validate().ok());
  options.max_background_jobs = 1;
  options.max_subcompactions = -1;
  ASSERT_FALSE(options.Validate().ok());
  options.max_subcompactions = 1;
  ASSERT_LILSM_OK(options.Validate());
}

}  // namespace
}  // namespace lilsm
