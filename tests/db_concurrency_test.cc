// ConcurrencyMode::kBackground engine tests: concurrent writers with
// snapshot-consistent readers, pinned iterators under mutation, write-stall
// engagement, background-compaction convergence, and clean shutdown while
// maintenance work is queued. Run under TSan in CI (see ci.yml).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lsm/db.h"
#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 48;

DBOptions BackgroundDbOptions() {
  DBOptions options;
  options.concurrency = ConcurrencyMode::kBackground;
  options.write_buffer_size = 64 << 10;    // tiny: frequent switches
  options.sstable_target_size = 32 << 10;  // many small tables
  options.l0_compaction_trigger = 2;
  options.l0_slowdown_trigger = 4;
  options.l0_stop_trigger = 8;
  options.value_size = kValueSize;
  options.key_size = 24;
  // The TSan CI job reruns this whole suite with the shared block cache
  // enabled (db_concurrency_test_blockcache in CMakeLists.txt), so every
  // concurrency scenario also races cache hits/misses/invalidation.
  if (const char* mb = std::getenv("LILSM_TEST_BLOCK_CACHE_MB")) {
    options.block_cache_bytes = std::strtoull(mb, nullptr, 10) << 20;
  }
  return options;
}

/// ReadOptions pinned to `snap` (the post-redesign calling convention).
ReadOptions SnapshotRead(const Snapshot* snap) {
  ReadOptions options;
  options.snapshot = snap;
  return options;
}

/// Writer w's i-th key: disjoint dense ranges per writer.
Key KeyFor(uint64_t writer, uint64_t i) { return writer * 1'000'000 + i + 1; }

std::string ValueFor(Key key, uint64_t version) {
  return DeriveValue(key ^ (version * 0x9E3779B9), kValueSize);
}

class DbConcurrencyTest : public ::testing::Test {
 protected:
  void Open(DBOptions options = BackgroundDbOptions()) {
    db_.reset();
    ASSERT_LILSM_OK(DB::Open(options, dir_.path() + "/db", &db_));
  }

  ScratchDir dir_{"db_concurrency"};
  std::unique_ptr<DB> db_;
};

// Writers insert sequentially in disjoint key ranges while readers verify
// the monotone-prefix invariant: whenever key i of a writer is visible,
// every earlier key of that writer must be visible too.
TEST_F(DbConcurrencyTest, ConcurrentWritersAndPrefixConsistentReaders) {
  Open();
  constexpr int kWriters = 3;
  constexpr int kReaders = 2;
  constexpr uint64_t kPerWriter = 3000;

  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      for (uint64_t i = 0; i < kPerWriter && !failed.load(); i++) {
        const Key key = KeyFor(w, i);
        if (!db_->Put(key, ValueFor(key, 1)).ok()) failed.store(true);
      }
    });
  }
  for (int r = 0; r < kReaders; r++) {
    threads.emplace_back([&, r] {
      Random rnd(1000 + r);
      std::string value;
      while (!done.load() && !failed.load()) {
        const uint64_t w = rnd.Uniform(kWriters);
        const uint64_t i = 1 + rnd.Uniform(kPerWriter - 1);
        if (db_->Get(KeyFor(w, i), &value).ok()) {
          // An earlier key from the same writer must already be there.
          const Key earlier = KeyFor(w, i / 2);
          Status s = db_->Get(earlier, &value);
          if (!s.ok() || value != ValueFor(earlier, 1)) failed.store(true);
        }
      }
    });
  }
  for (size_t t = 0; t < static_cast<size_t>(kWriters); t++) {
    threads[t].join();
  }
  done.store(true);
  for (size_t t = kWriters; t < threads.size(); t++) {
    threads[t].join();
  }
  ASSERT_FALSE(failed.load());

  ASSERT_LILSM_OK(db_->CompactUntilStable());
  std::string value;
  for (int w = 0; w < kWriters; w++) {
    for (uint64_t i = 0; i < kPerWriter; i += 17) {
      const Key key = KeyFor(w, i);
      ASSERT_LILSM_OK(db_->Get(key, &value));
      ASSERT_EQ(value, ValueFor(key, 1)) << "key " << key;
    }
  }
}

// A snapshot keeps returning the values it pinned even after every key is
// overwritten, flushed, and the tree fully compacted underneath it.
TEST_F(DbConcurrencyTest, SnapshotSurvivesFlushAndCompaction) {
  Open();
  constexpr uint64_t kKeys = 4000;
  for (uint64_t i = 0; i < kKeys; i++) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 1)));
  }
  const Snapshot* snap = db_->GetSnapshot();
  const SequenceNumber snap_seq = snap->sequence();

  for (uint64_t i = 0; i < kKeys; i++) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 2)));
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  ASSERT_LILSM_OK(db_->CompactUntilStable());
  ASSERT_GT(db_->LastSequence(), snap_seq);

  std::string value;
  for (uint64_t i = 0; i < kKeys; i += 7) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Get(SnapshotRead(snap), key, &value));
    ASSERT_EQ(value, ValueFor(key, 1)) << "snapshot key " << key;
    ASSERT_LILSM_OK(db_->Get(key, &value));
    ASSERT_EQ(value, ValueFor(key, 2)) << "latest key " << key;
  }

  // Snapshot iteration sees exactly the old view, in order.
  auto iter = db_->NewIterator(SnapshotRead(snap));
  uint64_t i = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++i) {
    ASSERT_EQ(iter->key(), KeyFor(0, i));
    ASSERT_EQ(iter->value().ToString(), ValueFor(KeyFor(0, i), 1));
  }
  ASSERT_EQ(i, kKeys);
  ASSERT_LILSM_OK(iter->status());
  iter.reset();
  db_->ReleaseSnapshot(snap);
}

// An iterator pins its view: two full scans interleaved with a concurrent
// writer mutating every key return identical, creation-time contents.
TEST_F(DbConcurrencyTest, IteratorPinsViewUnderConcurrentMutation) {
  Open();
  constexpr uint64_t kKeys = 3000;
  for (uint64_t i = 0; i < kKeys; i++) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 1)));
  }

  auto iter = db_->NewIterator();
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (uint64_t i = 0; i < kKeys && !failed.load(); i++) {
      const Key key = KeyFor(0, i);
      if (!db_->Put(key, ValueFor(key, 2)).ok()) failed.store(true);
    }
  });

  for (int scan = 0; scan < 2; scan++) {
    uint64_t i = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++i) {
      ASSERT_EQ(iter->key(), KeyFor(0, i));
      ASSERT_EQ(iter->value().ToString(), ValueFor(KeyFor(0, i), 1))
          << "scan " << scan << " key index " << i;
    }
    ASSERT_EQ(i, kKeys);
    ASSERT_LILSM_OK(iter->status());
  }
  writer.join();
  ASSERT_FALSE(failed.load());
  iter.reset();
  ASSERT_LILSM_OK(db_->CompactUntilStable());
}

// With a tiny buffer and a firehose writer, the slowdown/stop triggers
// must engage (the memtable refills far faster than a flush completes)
// without corrupting anything.
TEST_F(DbConcurrencyTest, WriteStallEngagesUnderPressure) {
  DBOptions options = BackgroundDbOptions();
  options.write_buffer_size = 16 << 10;
  Open(options);

  constexpr uint64_t kKeys = 12'000;
  for (uint64_t i = 0; i < kKeys; i++) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 1)));
  }
  const uint64_t stalls = db_->stats()->Count(Counter::kWriteStalls) +
                          db_->stats()->Count(Counter::kWriteSlowdowns);
  EXPECT_GT(stalls, 0u) << "triggers never engaged";

  ASSERT_LILSM_OK(db_->CompactUntilStable());
  std::string value;
  for (uint64_t i = 0; i < kKeys; i += 13) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Get(key, &value));
    ASSERT_EQ(value, ValueFor(key, 1));
  }
}

// A stop trigger below the compaction trigger would make a stalled
// writer wait for a compaction that scoring never requests; Open clamps
// the triggers so this config must make progress instead of deadlocking.
TEST_F(DbConcurrencyTest, MisorderedTriggersDoNotDeadlock) {
  DBOptions options = BackgroundDbOptions();
  options.l0_compaction_trigger = 50;  // above stop: clamped at Open
  options.l0_slowdown_trigger = 1;
  options.l0_stop_trigger = 2;
  options.write_buffer_size = 16 << 10;
  Open(options);
  for (uint64_t i = 0; i < 6000; i++) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 1)));
  }
  ASSERT_LILSM_OK(db_->CompactUntilStable());
  std::string value;
  ASSERT_LILSM_OK(db_->Get(KeyFor(0, 5999), &value));
}

// CompactUntilStable must leave every level within capacity with all the
// background work drained.
TEST_F(DbConcurrencyTest, BackgroundCompactionConverges) {
  Open();
  constexpr uint64_t kKeys = 10'000;
  for (uint64_t i = 0; i < kKeys; i++) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 1)));
  }
  ASSERT_LILSM_OK(db_->FlushMemTable());
  ASSERT_LILSM_OK(db_->CompactUntilStable());

  EXPECT_GT(db_->stats()->Count(Counter::kCompactions), 0u);
  EXPECT_GT(db_->stats()->TimerCount(Timer::kBackgroundWork), 0u);
  EXPECT_LT(db_->NumFilesAtLevel(0), 2);  // below the L0 trigger
  uint64_t total_entries = 0;
  for (int level = 0; level < kNumLevels; level++) {
    total_entries += db_->EntriesAtLevel(level);
  }
  EXPECT_EQ(total_entries, kKeys);
}

// Closing (and the preceding CompactUntilStable) with flushes and
// compactions still queued must shut down cleanly, and a reopen must
// recover every write from the WAL and tables.
TEST_F(DbConcurrencyTest, CleanCloseAndRecoverWithQueuedWork) {
  constexpr uint64_t kKeys = 8000;
  {
    Open();
    for (uint64_t i = 0; i < kKeys; i++) {
      const Key key = KeyFor(0, i);
      ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 1)));
    }
    // Destroy immediately: background flushes/compactions are mid-flight
    // or queued; the destructor must drain or abort them cleanly.
    db_.reset();
  }
  {
    Open();
    for (uint64_t i = 0; i < kKeys; i++) {
      const Key key = KeyFor(0, i);
      ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 2)));
    }
    ASSERT_LILSM_OK(db_->CompactUntilStable());
    db_.reset();  // close right after the stabilize round-trip
  }
  Open();
  std::string value;
  for (uint64_t i = 0; i < kKeys; i += 11) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Get(key, &value));
    ASSERT_EQ(value, ValueFor(key, 2)) << "key " << key;
  }
}

// The two modes must agree: the same workload produces identical logical
// contents inline and in background mode.
TEST_F(DbConcurrencyTest, ModesAgreeOnFinalContents) {
  std::map<Key, std::string> model;
  for (ConcurrencyMode mode :
       {ConcurrencyMode::kInline, ConcurrencyMode::kBackground}) {
    DBOptions options = BackgroundDbOptions();
    options.concurrency = mode;
    const std::string name =
        dir_.path() + (mode == ConcurrencyMode::kInline ? "/dbi" : "/dbb");
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(DB::Open(options, name, &db));
    Random rnd(7);
    for (uint64_t i = 0; i < 6000; i++) {
      const Key key = KeyFor(0, rnd.Uniform(2000));
      if (rnd.OneIn(5)) {
        ASSERT_LILSM_OK(db->Delete(key));
        if (mode == ConcurrencyMode::kInline) model.erase(key);
      } else {
        ASSERT_LILSM_OK(db->Put(key, ValueFor(key, i)));
        if (mode == ConcurrencyMode::kInline) model[key] = ValueFor(key, i);
      }
    }
    ASSERT_LILSM_OK(db->CompactUntilStable());
    auto iter = db->NewIterator();
    auto it = model.begin();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next(), ++it) {
      ASSERT_NE(it, model.end());
      ASSERT_EQ(iter->key(), it->first);
      ASSERT_EQ(iter->value().ToString(), it->second);
    }
    ASSERT_EQ(it, model.end());
    ASSERT_LILSM_OK(iter->status());
  }
}

// Level-model catalog installs race pinned-snapshot reads: with
// kCompactionMaintained + kLevel granularity, background compactions
// stitch and install level models while readers hold snapshots pinned to
// older versions. A pinned reader's version carries its own model refs,
// so every read must stay correct with no fallback to stale models.
// (Run under TSan in CI, like the rest of this suite.)
TEST_F(DbConcurrencyTest, MaintainedModelInstallsVsPinnedSnapshotReads) {
  DBOptions options = BackgroundDbOptions();
  options.index_granularity = IndexGranularity::kLevel;
  options.level_model_policy = LevelModelPolicy::kCompactionMaintained;
  Open(options);

  constexpr uint64_t kKeys = 3000;
  for (uint64_t i = 0; i < kKeys; i++) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 1)));
  }
  ASSERT_LILSM_OK(db_->CompactUntilStable());
  const Snapshot* snap = db_->GetSnapshot();

  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  std::thread writer([&] {
    // Overwrites churn the tree: flushes and compactions install new
    // versions (with freshly stitched models) under the readers.
    for (uint64_t i = 0; i < kKeys && !failed.load(); i++) {
      const Key key = KeyFor(0, i);
      if (!db_->Put(key, ValueFor(key, 2)).ok()) failed.store(true);
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&, r] {
      Random rnd(77 + r);
      std::string value;
      while (!done.load() && !failed.load()) {
        const Key key = KeyFor(0, rnd.Uniform(kKeys));
        // Snapshot reads must see exactly the pinned (version 1) values.
        Status s = db_->Get(SnapshotRead(snap), key, &value);
        if (!s.ok() || value != ValueFor(key, 1)) {
          failed.store(true);
          break;
        }
        // Latest reads must see one of the two written values.
        s = db_->Get(key, &value);
        if (!s.ok() ||
            (value != ValueFor(key, 1) && value != ValueFor(key, 2))) {
          failed.store(true);
          break;
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  ASSERT_FALSE(failed.load());
  db_->ReleaseSnapshot(snap);

  ASSERT_LILSM_OK(db_->CompactUntilStable());
  EXPECT_GT(db_->stats()->Count(Counter::kModelsStitched), 0u);
  std::string value;
  for (uint64_t i = 0; i < kKeys; i += 7) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Get(key, &value));
    ASSERT_EQ(value, ValueFor(key, 2)) << "key " << key;
  }
}

// Snapshots taken mid-stream by a concurrent reader are each internally
// consistent: a snapshot never shows key i without key i/2.
TEST_F(DbConcurrencyTest, SnapshotsConsistentUnderConcurrentWrites) {
  Open();
  constexpr uint64_t kKeys = 4000;
  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (uint64_t i = 0; i < kKeys && !failed.load(); i++) {
      const Key key = KeyFor(0, i);
      if (!db_->Put(key, ValueFor(key, 1)).ok()) failed.store(true);
    }
    done.store(true);
  });

  std::string value;
  while (!done.load() && !failed.load()) {
    const Snapshot* snap = db_->GetSnapshot();
    // Find the frontier via the snapshot iterator, then spot-check Gets
    // through the same snapshot against it.
    uint64_t visible = 0;
    auto iter = db_->NewIterator(SnapshotRead(snap));
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) visible++;
    iter.reset();
    if (visible > 0) {
      for (uint64_t i : {visible / 2, visible - 1}) {
        const Key key = KeyFor(0, i);
        Status s = db_->Get(SnapshotRead(snap), key, &value);
        if (!s.ok() || value != ValueFor(key, 1)) {
          failed.store(true);
          break;
        }
      }
      // One past the frontier must be invisible through the snapshot.
      if (visible < kKeys &&
          !db_->Get(SnapshotRead(snap), KeyFor(0, visible), &value)
               .IsNotFound()) {
        failed.store(true);
      }
    }
    db_->ReleaseSnapshot(snap);
  }
  writer.join();
  ASSERT_FALSE(failed.load());
}

// MultiGet against concurrent background flush/compaction: a reader holds
// a snapshot pinned to the pre-churn state and batches lookups through it
// while a writer overwrites every key (forcing memtable switches, L0
// growth, and compactions underneath). Every batch must return exactly
// the pinned values; a second reader MultiGets the live view and only
// checks well-formedness (the frontier moves under it). TSan/ASan clean.
TEST_F(DbConcurrencyTest, MultiGetUnderConcurrentMaintenanceWithSnapshot) {
  Open();
  constexpr uint64_t kKeys = 3000;
  for (uint64_t i = 0; i < kKeys; i++) {
    const Key key = KeyFor(0, i);
    ASSERT_LILSM_OK(db_->Put(key, ValueFor(key, 1)));
  }
  const Snapshot* snap = db_->GetSnapshot();

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread writer([&] {
    uint64_t round = 2;
    while (!stop.load(std::memory_order_acquire)) {
      for (uint64_t i = 0; i < kKeys && !stop.load(); i++) {
        const Key key = KeyFor(0, i);
        if (!db_->Put(key, ValueFor(key, round)).ok()) {
          failed.store(true);
          return;
        }
      }
      round++;
    }
  });

  std::thread live_reader([&] {
    Random rnd(4242);
    std::vector<Key> batch;
    std::vector<std::string> values;
    std::vector<Status> statuses;
    for (int iter = 0; iter < 40 && !failed.load(); iter++) {
      batch.clear();
      for (int i = 0; i < 256; i++) {
        batch.push_back(KeyFor(0, rnd.Uniform(kKeys)));
      }
      Status s = db_->MultiGet(ReadOptions(), batch, &values, &statuses);
      if (!s.ok()) {
        failed.store(true);
        return;
      }
      for (size_t i = 0; i < batch.size(); i++) {
        // Live view: values race writer rounds, so only well-formedness
        // is checkable — every loaded key exists with a full-size value.
        if (!statuses[i].ok() || values[i].size() != kValueSize) {
          failed.store(true);
          return;
        }
      }
    }
  });

  {
    Random rnd(777);
    std::vector<Key> batch;
    std::vector<std::string> values;
    std::vector<Status> statuses;
    ReadOptions pinned = SnapshotRead(snap);
    for (int iter = 0; iter < 40 && !failed.load(); iter++) {
      batch.clear();
      for (int i = 0; i < 256; i++) {
        batch.push_back(KeyFor(0, rnd.Uniform(kKeys)));
      }
      Status s = db_->MultiGet(pinned, batch, &values, &statuses);
      if (!s.ok()) {
        failed.store(true);
        break;
      }
      for (size_t i = 0; i < batch.size(); i++) {
        if (!statuses[i].ok() || values[i] != ValueFor(batch[i], 1)) {
          failed.store(true);
          break;
        }
      }
    }
  }

  stop.store(true, std::memory_order_release);
  writer.join();
  live_reader.join();
  db_->ReleaseSnapshot(snap);
  ASSERT_FALSE(failed.load());
  EXPECT_GT(db_->stats()->Count(Counter::kMultiGetBatches), 0u);
}

// Regression test for a thread-safety-analysis finding in the group-commit
// leader: WriteGrouped dereferenced the mutex-guarded wal_/mem_ members
// AFTER dropping the DB mutex, relying implicitly on the queue-front token
// to keep them stable. The fix snapshots both into locals under the mutex
// before unlocking. This test hammers that exact window: grouped sync and
// non-sync writers racing explicit memtable switches (FlushMemTable swaps
// mem_ and rolls wal_), so any return to off-mutex member access shows up
// as a data race under TSan.
TEST_F(DbConcurrencyTest, GroupCommitLeaderRacesMemtableSwitch) {
  DBOptions options = BackgroundDbOptions();
  options.group_commit = true;
  Open(options);

  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 400;
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; w++) {
    writers.emplace_back([this, w] {
      WriteOptions wopts;
      for (uint64_t i = 0; i < kPerWriter; i++) {
        // Alternate the sync bit so groups mix fsync and flush leaders.
        wopts.sync = (i % 7 == 0);
        const Key key = KeyFor(static_cast<uint64_t>(w), i);
        ASSERT_LILSM_OK(db_->Put(wopts, key, ValueFor(key, 1)));
      }
    });
  }

  // Force memtable switches (mem_ swap + WAL roll) while groups commit.
  std::thread flusher([this, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_LILSM_OK(db_->FlushMemTable());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  flusher.join();

  // Every write must have landed exactly once despite the switch storm.
  ReadOptions ropts;
  for (int w = 0; w < kWriters; w++) {
    for (uint64_t i = 0; i < kPerWriter; i += 37) {
      const Key key = KeyFor(static_cast<uint64_t>(w), i);
      std::string value;
      ASSERT_LILSM_OK(db_->Get(ropts, key, &value));
      EXPECT_EQ(value, ValueFor(key, 1));
    }
  }
}

}  // namespace
}  // namespace lilsm
