// Histogram statistics: mean, percentiles, merge.
#include "util/histogram.h"

#include <gtest/gtest.h>

namespace lilsm {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.Min(), 42.0);
  EXPECT_DOUBLE_EQ(h.Max(), 42.0);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  for (int i = 1; i <= 1000; i++) h.Add(i);
  EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
  EXPECT_EQ(h.Count(), 1000u);
}

TEST(HistogramTest, PercentilesAreMonotoneAndBracketed) {
  Histogram h;
  for (int i = 1; i <= 100000; i++) h.Add(i % 1000 + 1);
  double prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, h.Min());
    EXPECT_LE(v, h.Max());
    prev = v;
  }
  // Median of a uniform 1..1000 population: within bucket resolution.
  EXPECT_NEAR(h.Percentile(50), 500, 120);
}

TEST(HistogramTest, MergeCombinesPopulations) {
  Histogram a, b;
  for (int i = 0; i < 100; i++) a.Add(10);
  for (int i = 0; i < 100; i++) b.Add(30);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200u);
  EXPECT_DOUBLE_EQ(a.Mean(), 20.0);
  EXPECT_DOUBLE_EQ(a.Max(), 30.0);
  EXPECT_DOUBLE_EQ(a.Min(), 10.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, StdDevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 50; i++) h.Add(7);
  EXPECT_NEAR(h.StdDev(), 0.0, 1e-9);
}

TEST(HistogramTest, ToStringMentionsCount) {
  Histogram h;
  h.Add(1);
  h.Add(100);
  EXPECT_NE(h.ToString().find("count=2"), std::string::npos);
}

}  // namespace
}  // namespace lilsm
