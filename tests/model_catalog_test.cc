// ModelCatalog: segment stitching vs. full retrains, version-pinned lazy
// builds, blow-up fallback, and the stitched == from-scratch equivalence
// property across randomized compaction sequences.
#include "lsm/model_catalog.h"

#include <gtest/gtest.h>

#include <map>

#include "lsm/db.h"
#include "lsm/dbformat.h"
#include "table/segmented_table.h"
#include "tests/test_util.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;
using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 32;

class ModelCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_unique<ScratchDir>("modelcat");
    options_.env = Env::Default();
    options_.value_size = kValueSize;
    // Per-file tables train under the same config the catalog stitches
    // with, as the DB arranges; EpsilonDrift* below covers the mismatch.
    options_.index_config = config_;
    cache_ = std::make_unique<TableCache>(options_, dir_->path(), 64);
    keys_ = RandomGapKeys(9000, 11);
  }

  /// Builds one table over keys_[begin, end) with a fresh file number.
  FileMeta BuildFile(size_t begin, size_t end) {
    const uint64_t number = next_file_number_++;
    std::unique_ptr<TableBuilder> builder;
    EXPECT_LILSM_OK(NewTableBuilder(
        options_, TableFileName(dir_->path(), number), &builder));
    for (size_t i = begin; i < end; i++) {
      EXPECT_LILSM_OK(builder->Add(keys_[i], PackTag(i + 1, kTypeValue),
                                   DeriveValue(keys_[i], kValueSize)));
    }
    EXPECT_LILSM_OK(builder->Finish());
    FileMeta meta;
    meta.number = number;
    meta.entries = end - begin;
    meta.smallest = keys_[begin];
    meta.largest = keys_[end - 1];
    return meta;
  }

  /// Partitions keys_[0, total) into files at the given cut points.
  std::vector<FileMeta> BuildFiles(const std::vector<size_t>& cuts,
                                   size_t total) {
    std::vector<FileMeta> files;
    size_t begin = 0;
    for (size_t cut : cuts) {
      files.push_back(BuildFile(begin, cut));
      begin = cut;
    }
    files.push_back(BuildFile(begin, total));
    return files;
  }

  /// Asserts every key of `files` gets a window containing its local
  /// position.
  void CheckWindows(const LevelModel& model,
                    const std::vector<FileMeta>& files) {
    size_t global = 0;
    for (size_t f = 0; f < files.size(); f++) {
      for (uint64_t i = 0; i < files[f].entries; i++, global++) {
        size_t lo = 0, hi = 0;
        ASSERT_TRUE(
            ModelCatalog::PredictInFile(model, keys_[global], f, &lo, &hi));
        ASSERT_LE(lo, i) << "global key index " << global;
        ASSERT_GE(hi, i) << "global key index " << global;
        ASSERT_LT(hi, files[f].entries);
      }
    }
  }

  std::unique_ptr<ScratchDir> dir_;
  TableOptions options_;
  std::unique_ptr<TableCache> cache_;
  std::vector<Key> keys_;
  uint64_t next_file_number_ = 1;
  Stats stats_;
  IndexConfig config_ = IndexConfig::FromPositionBoundary(32);
};

TEST_F(ModelCatalogTest, StitchedModelPredictsAcrossFiles) {
  ModelCatalog catalog(Env::Default(), &stats_, /*stitch_blowup=*/4.0);
  std::vector<FileMeta> files = BuildFiles({3000, 6000}, 9000);
  LevelModelRef model;
  ASSERT_LILSM_OK(catalog.BuildForInstall(files, cache_.get(),
                                          IndexType::kPGM, config_, nullptr,
                                          &model));
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->stitched);
  EXPECT_GT(model->MemoryUsage(), 0u);
  EXPECT_EQ(model->cumulative.back(), 9000u);
  // Stitching re-reads no keys: the bytes counter stays untouched.
  EXPECT_EQ(stats_.Count(Counter::kModelBuildBytesRead), 0u);
  EXPECT_EQ(stats_.Count(Counter::kModelsStitched), 1u);
  EXPECT_GT(stats_.TimerCount(Timer::kModelStitch), 0u);
  CheckWindows(*model, files);
}

TEST_F(ModelCatalogTest, StitchWindowsAgreeWithFullRetrain) {
  for (IndexType type :
       {IndexType::kPLR, IndexType::kFITingTree, IndexType::kPGM}) {
    SCOPED_TRACE(IndexTypeName(type));
    ModelCatalog catalog(Env::Default(), &stats_, 4.0);
    std::vector<FileMeta> files = BuildFiles({2500, 4000, 7000}, 9000);
    LevelModelRef stitched, retrained;
    ASSERT_LILSM_OK(catalog.BuildForInstall(files, cache_.get(), type,
                                            config_, nullptr, &stitched));
    ASSERT_LILSM_OK(catalog.TrainFull(files, cache_.get(), type, config_,
                                      Timer::kModelRetrain, &retrained));
    ASSERT_TRUE(stitched->stitched);
    ASSERT_FALSE(retrained->stitched);
    EXPECT_EQ(stitched->cumulative, retrained->cumulative);
    // Both models must bound every present key's true position; the
    // windows need not be byte-identical (different segmentation), but
    // both must be correct.
    CheckWindows(*stitched, files);
    CheckWindows(*retrained, files);
  }
}

// The equivalence property: a model stitched incrementally across
// randomized "compaction" sequences (re-partitions of the level, cache
// hits for carried-over files) predicts entry bounds identical to one
// stitched from scratch over the same final file set.
TEST_F(ModelCatalogTest, IncrementalStitchMatchesFromScratchAcrossChurn) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ModelCatalog incremental(Env::Default(), &stats_, 4.0);
    Random rnd(seed);
    LevelModelRef model;
    std::vector<FileMeta> files;
    for (int round = 0; round < 6; round++) {
      // Re-partition the level at random cut points, reusing the files
      // before the first cut (a partial compaction rewrites a suffix).
      const size_t keep = files.empty() ? 0 : rnd.Uniform(files.size());
      std::vector<FileMeta> next(files.begin(), files.begin() + keep);
      size_t begin = 0;
      for (const FileMeta& meta : next) begin += meta.entries;
      while (begin < 9000) {
        const size_t len = std::min<size_t>(9000 - begin,
                                            500 + rnd.Uniform(2500));
        next.push_back(BuildFile(begin, begin + len));
        begin += len;
      }
      files = std::move(next);
      ASSERT_LILSM_OK(incremental.BuildForInstall(
          files, cache_.get(), IndexType::kPGM, config_, model.get(),
          &model));
      ASSERT_TRUE(model->stitched);
      CheckWindows(*model, files);

      ModelCatalog scratch(Env::Default(), &stats_, 4.0);
      LevelModelRef fresh;
      ASSERT_LILSM_OK(scratch.BuildForInstall(files, cache_.get(),
                                              IndexType::kPGM, config_,
                                              nullptr, &fresh));
      ASSERT_EQ(model->cumulative, fresh->cumulative);
      size_t global = 0;
      for (size_t f = 0; f < files.size(); f++) {
        for (uint64_t i = 0; i < files[f].entries; i++, global++) {
          size_t ilo = 0, ihi = 0, slo = 0, shi = 0;
          ASSERT_TRUE(ModelCatalog::PredictInFile(*model, keys_[global], f,
                                                  &ilo, &ihi));
          ASSERT_TRUE(ModelCatalog::PredictInFile(*fresh, keys_[global], f,
                                                  &slo, &shi));
          ASSERT_EQ(ilo, slo) << "round " << round << " key " << global;
          ASSERT_EQ(ihi, shi) << "round " << round << " key " << global;
        }
      }
    }
  }
}

// A runtime config narrower than what the per-file indexes were trained
// under must not shrink the stitched model's windows: the stitch adopts
// the widest per-file training epsilon, so present keys stay covered.
TEST_F(ModelCatalogTest, EpsilonDriftDoesNotUnderCover) {
  ModelCatalog catalog(Env::Default(), &stats_, 4.0);
  std::vector<FileMeta> files = BuildFiles({3000, 6000}, 9000);
  IndexConfig narrow = IndexConfig::FromPositionBoundary(4);  // epsilon 2
  LevelModelRef model;
  ASSERT_LILSM_OK(catalog.BuildForInstall(files, cache_.get(),
                                          IndexType::kPGM, narrow, nullptr,
                                          &model));
  ASSERT_TRUE(model->stitched);
  CheckWindows(*model, files);  // files were trained at epsilon 16
}

TEST_F(ModelCatalogTest, CanStitchMatchesSegmentBasedTypes) {
  EXPECT_TRUE(ModelCatalog::CanStitch(IndexType::kPLR));
  EXPECT_TRUE(ModelCatalog::CanStitch(IndexType::kFITingTree));
  EXPECT_TRUE(ModelCatalog::CanStitch(IndexType::kPGM));
  EXPECT_FALSE(ModelCatalog::CanStitch(IndexType::kRMI));
  EXPECT_FALSE(ModelCatalog::CanStitch(IndexType::kRadixSpline));
  EXPECT_FALSE(ModelCatalog::CanStitch(IndexType::kPLEX));
  EXPECT_FALSE(ModelCatalog::CanStitch(IndexType::kFencePointer));
}

TEST_F(ModelCatalogTest, UnsupportedTypeFallsBackToRetrain) {
  ModelCatalog catalog(Env::Default(), &stats_, 4.0);
  std::vector<FileMeta> files = BuildFiles({4500}, 9000);
  LevelModelRef model;
  ASSERT_LILSM_OK(catalog.BuildForInstall(files, cache_.get(),
                                          IndexType::kRMI, config_, nullptr,
                                          &model));
  EXPECT_FALSE(model->stitched);
  EXPECT_EQ(stats_.Count(Counter::kModelRetrains), 1u);
  EXPECT_GT(stats_.Count(Counter::kModelBuildBytesRead), 0u);
  CheckWindows(*model, files);
}

TEST_F(ModelCatalogTest, BlowupRatioForcesRetrain) {
  std::vector<FileMeta> files = BuildFiles({3000, 6000}, 9000);
  {
    // A sub-1 ratio can never be satisfied (density <= ratio * baseline
    // fails even against the stitch's own density): always retrain.
    ModelCatalog catalog(Env::Default(), &stats_, 0.5);
    LevelModelRef model;
    ASSERT_LILSM_OK(catalog.BuildForInstall(files, cache_.get(),
                                            IndexType::kPGM, config_,
                                            nullptr, &model));
    EXPECT_FALSE(model->stitched);
    EXPECT_EQ(stats_.Count(Counter::kModelRetrains), 1u);
  }
  {
    // The install path defers instead of scanning: null model, no
    // retrain, the read path's lazy build picks it up later.
    ModelCatalog catalog(Env::Default(), &stats_, 0.5);
    LevelModelRef model;
    const uint64_t retrains_before = stats_.Count(Counter::kModelRetrains);
    ASSERT_LILSM_OK(catalog.BuildForInstall(
        files, cache_.get(), IndexType::kPGM, config_, nullptr, &model,
        ModelCatalog::StitchFallback::kDefer));
    EXPECT_EQ(model, nullptr);
    EXPECT_EQ(stats_.Count(Counter::kModelRetrains), retrains_before);
  }
  {
    // Ratio <= 0 disables the fallback entirely.
    ModelCatalog catalog(Env::Default(), &stats_, 0.0);
    LevelModelRef model;
    ASSERT_LILSM_OK(catalog.BuildForInstall(files, cache_.get(),
                                            IndexType::kPGM, config_,
                                            nullptr, &model));
    EXPECT_TRUE(model->stitched);
  }
}

TEST_F(ModelCatalogTest, PruneDropsDeadFileSegments) {
  ModelCatalog catalog(Env::Default(), &stats_, 4.0);
  std::vector<FileMeta> files = BuildFiles({3000, 6000}, 9000);
  LevelModelRef model;
  ASSERT_LILSM_OK(catalog.BuildForInstall(files, cache_.get(),
                                          IndexType::kPGM, config_, nullptr,
                                          &model));
  EXPECT_EQ(catalog.SegmentCacheEntries(), 3u);
  Version v;  // standalone: keeps only the first file alive
  v.files_[1].push_back(files[0]);
  catalog.Prune(v);
  EXPECT_EQ(catalog.SegmentCacheEntries(), 1u);
}

// Lazy-policy regression (the old stamp/invalidate semantics, folded into
// version-pinned slots): one build per version, cached on re-reads, and a
// fresh version starts empty instead of consulting a mismatched model.
TEST_F(ModelCatalogTest, LazyGetOrBuildIsVersionPinned) {
  ModelCatalog catalog(Env::Default(), &stats_, 4.0);
  std::vector<FileMeta> files = BuildFiles({3000, 6000}, 9000);

  Version v1;
  v1.files_[1] = files;
  LevelModelRef m1 = catalog.GetOrBuild(v1, 1, cache_.get(), IndexType::kPGM,
                                        config_);
  ASSERT_NE(m1, nullptr);
  EXPECT_EQ(stats_.TimerCount(Timer::kLevelIndexBuild), 1u);
  EXPECT_GT(stats_.Count(Counter::kModelBuildBytesRead), 0u);
  CheckWindows(*m1, files);

  // Same version: cached, no rebuild.
  LevelModelRef again = catalog.GetOrBuild(v1, 1, cache_.get(),
                                           IndexType::kPGM, config_);
  EXPECT_EQ(again.get(), m1.get());
  EXPECT_EQ(stats_.TimerCount(Timer::kLevelIndexBuild), 1u);

  // A new version (same files, new install) starts empty and rebuilds —
  // the lazy policy's invalidate-on-install behavior.
  Version v2;
  v2.files_[1] = files;
  LevelModelRef m2 = catalog.GetOrBuild(v2, 1, cache_.get(), IndexType::kPGM,
                                        config_);
  ASSERT_NE(m2, nullptr);
  EXPECT_NE(m2.get(), m1.get());
  EXPECT_EQ(stats_.TimerCount(Timer::kLevelIndexBuild), 2u);
  // v1's reader keeps its own model: no downgrade, no fallback dance.
  EXPECT_EQ(catalog.GetOrBuild(v1, 1, cache_.get(), IndexType::kPGM,
                               config_).get(),
            m1.get());

  // Empty levels never build.
  EXPECT_EQ(catalog.GetOrBuild(v1, 2, cache_.get(), IndexType::kPGM,
                               config_),
            nullptr);
}

// End-to-end: the two policies must produce identical Get results across
// a randomized write/delete/flush/compact workload at level granularity.
TEST(ModelPolicyEquivalenceTest, PoliciesAgreeOnGetResults) {
  ScratchDir dir("modelpolicy");
  auto open = [&](LevelModelPolicy policy, const std::string& name,
                  std::unique_ptr<DB>* db) {
    DBOptions options;
    options.write_buffer_size = 64 << 10;
    options.sstable_target_size = 32 << 10;
    options.l0_compaction_trigger = 2;
    options.value_size = kValueSize;
    options.index_granularity = IndexGranularity::kLevel;
    options.level_model_policy = policy;
    ASSERT_LILSM_OK(DB::Open(options, dir.path() + "/" + name, db));
  };
  std::unique_ptr<DB> lazy, maintained;
  open(LevelModelPolicy::kLazyRebuild, "lazy", &lazy);
  open(LevelModelPolicy::kCompactionMaintained, "maintained", &maintained);

  std::map<Key, std::string> model;
  Random rnd(29);
  std::string lv, mv;
  for (int round = 0; round < 5; round++) {
    for (int i = 0; i < 2000; i++) {
      const Key key = 1 + rnd.Uniform(6000) * 7;
      if (rnd.OneIn(6)) {
        ASSERT_LILSM_OK(lazy->Delete(key));
        ASSERT_LILSM_OK(maintained->Delete(key));
        model.erase(key);
      } else {
        const std::string value = DeriveValue(key ^ round, kValueSize);
        ASSERT_LILSM_OK(lazy->Put(key, value));
        ASSERT_LILSM_OK(maintained->Put(key, value));
        model[key] = value;
      }
    }
    ASSERT_LILSM_OK(lazy->FlushMemTable());
    ASSERT_LILSM_OK(maintained->FlushMemTable());
    for (const auto& [key, expected] : model) {
      ASSERT_LILSM_OK(lazy->Get(key, &lv));
      ASSERT_LILSM_OK(maintained->Get(key, &mv));
      ASSERT_EQ(lv, expected) << "round " << round << " key " << key;
      ASSERT_EQ(mv, expected) << "round " << round << " key " << key;
    }
    // Absent keys (never multiples of 7 + 1's complement set): both miss.
    for (int i = 0; i < 200; i++) {
      const Key absent = 2 + rnd.Uniform(6000) * 7;
      ASSERT_EQ(lazy->Get(absent, &lv).IsNotFound(),
                maintained->Get(absent, &mv).IsNotFound());
    }
  }
  // The maintained engine stitched on the write path and re-read fewer
  // model-build bytes than the lazy engine's read-path rebuilds.
  EXPECT_GT(maintained->stats()->Count(Counter::kModelsStitched), 0u);
  EXPECT_LT(maintained->stats()->Count(Counter::kModelBuildBytesRead),
            lazy->stats()->Count(Counter::kModelBuildBytesRead));
}

}  // namespace
}  // namespace lilsm
