// Async batched I/O, DB level: MultiGet at io_depth > 1 and iterator
// scans with readahead_blocks > 0 are bit-identical to the synchronous
// paper path, across both table formats, cache on/off, and both index
// granularities; default knobs keep the async machinery fully disengaged
// (zero async/readahead counters, unchanged SimEnv read counts); and the
// SimEnv queue-depth model shows batched cold reads costing less modeled
// latency than the sequential path. Runs under TSan in CI — MultiGet at
// io_depth > 1 exercises the thread-pool ReadBatch backend.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lsm/db.h"
#include "tests/test_util.h"
#include "util/sim_env.h"
#include "workload/dataset.h"

namespace lilsm {
namespace {

using testing_util::RandomGapKeys;
using testing_util::ScratchDir;

constexpr uint32_t kValueSize = 56;

DBOptions SmallOptions(int io_depth,
                       TableFormat format = TableFormat::kSegmented,
                       size_t block_cache_bytes = 0) {
  DBOptions options;
  options.write_buffer_size = 64 << 10;
  options.sstable_target_size = 32 << 10;
  options.l0_compaction_trigger = 2;
  options.key_size = 24;
  options.value_size = format == TableFormat::kSegmented ? kValueSize : 0;
  options.table_format = format;
  options.block_cache_bytes = block_cache_bytes;
  options.io_depth = io_depth;
  return options;
}

std::string ValueFor(Key key) {
  return DeriveValue(key ^ 0xA5A5A5A5, kValueSize);
}

/// Loads `keys` and merges the tree down so levels >= 1 are populated —
/// the async MultiGet branch only engages below L0.
void LoadAndCompact(DB* db, const std::vector<Key>& keys) {
  for (Key key : keys) {
    ASSERT_LILSM_OK(db->Put(key, ValueFor(key)));
  }
  ASSERT_LILSM_OK(db->FlushMemTable());
  ASSERT_LILSM_OK(db->CompactAll());
}

/// Runs identical randomized MultiGet batches (present + absent keys)
/// against both DBs and asserts element-wise identical statuses/values,
/// cross-checked against ValueFor.
void ExpectMultiGetEquivalent(DB* sync_db, DB* async_db,
                              const std::vector<Key>& keys, uint64_t seed) {
  Random rnd(seed);
  std::vector<Key> batch;
  for (int round = 0; round < 15; round++) {
    batch.clear();
    for (int j = 0; j < 96; j++) {
      // Mix hits with misses (written keys are odd multiples of gaps;
      // key+1 is absent with high probability).
      Key key = keys[rnd.Uniform(keys.size())];
      if (j % 5 == 0) key += 1;
      batch.push_back(key);
    }
    std::vector<std::string> sync_values, async_values;
    std::vector<Status> sync_statuses, async_statuses;
    ASSERT_LILSM_OK(sync_db->MultiGet(batch, &sync_values, &sync_statuses));
    ASSERT_LILSM_OK(
        async_db->MultiGet(batch, &async_values, &async_statuses));
    ASSERT_EQ(sync_values.size(), batch.size());
    ASSERT_EQ(async_values.size(), batch.size());
    for (size_t j = 0; j < batch.size(); j++) {
      EXPECT_EQ(sync_statuses[j].ToString(), async_statuses[j].ToString())
          << "key " << batch[j];
      EXPECT_EQ(sync_values[j], async_values[j]) << "key " << batch[j];
      if (sync_statuses[j].ok()) {
        EXPECT_EQ(sync_values[j], ValueFor(batch[j]));
      }
    }
  }
}

class DbAsyncIoTest : public ::testing::TestWithParam<TableFormat> {};

// The core contract: MultiGet at io_depth=8 answers bit-identically to
// io_depth=1 over identical trees, cache off and on, and the async DB
// actually takes the batched path (kAsyncBatches advances).
TEST_P(DbAsyncIoTest, AsyncMultiGetMatchesSyncBitExact) {
  ScratchDir dir("dbasync_equiv");
  const std::vector<Key> keys = RandomGapKeys(5000, 7);
  for (size_t cache_bytes : {size_t{0}, size_t{512 << 10}}) {
    const std::string tag =
        cache_bytes == 0 ? "/cold" : "/cached";
    std::unique_ptr<DB> sync_db, async_db;
    ASSERT_LILSM_OK(DB::Open(SmallOptions(1, GetParam(), cache_bytes),
                             dir.path() + tag + "_sync", &sync_db));
    ASSERT_LILSM_OK(DB::Open(SmallOptions(8, GetParam(), cache_bytes),
                             dir.path() + tag + "_async", &async_db));
    LoadAndCompact(sync_db.get(), keys);
    LoadAndCompact(async_db.get(), keys);

    ExpectMultiGetEquivalent(sync_db.get(), async_db.get(), keys,
                             31 + cache_bytes);
    EXPECT_GT(async_db->stats()->Count(Counter::kAsyncBatches), 0u);
    EXPECT_EQ(sync_db->stats()->Count(Counter::kAsyncBatches), 0u);
    if (cache_bytes == 0) {
      // Every block is cold, so batches must contain real reads.
      EXPECT_GT(async_db->stats()->Count(Counter::kAsyncReads), 0u);
    }
  }
}

// Full-scan and range-lookup equivalence: readahead on and off return the
// identical entry sequence, cache off and on, with prefetches actually
// landing (kReadaheadHits advances on the readahead pass).
TEST_P(DbAsyncIoTest, IteratorReadaheadMatchesSyncScan) {
  ScratchDir dir("dbasync_scan");
  const std::vector<Key> keys = RandomGapKeys(5000, 5);
  for (size_t cache_bytes : {size_t{0}, size_t{512 << 10}}) {
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(DB::Open(
        SmallOptions(1, GetParam(), cache_bytes),
        dir.path() + (cache_bytes == 0 ? "/cold" : "/cached"), &db));
    LoadAndCompact(db.get(), keys);

    std::vector<std::pair<Key, std::string>> plain, ahead;
    for (int pass = 0; pass < 2; pass++) {
      ReadOptions ropts;
      ropts.readahead_blocks = pass == 0 ? 0 : 4;
      auto* out = pass == 0 ? &plain : &ahead;
      auto iter = db->NewIterator(ropts);
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        out->emplace_back(iter->key(), iter->value().ToString());
      }
      ASSERT_LILSM_OK(iter->status());
    }
    EXPECT_EQ(plain.size(), keys.size());
    EXPECT_EQ(plain, ahead);
    EXPECT_GT(db->stats()->Count(Counter::kReadaheadHits), 0u);

    // RangeLookup threads readahead through the same iterators.
    std::vector<std::pair<Key, std::string>> range_plain, range_ahead;
    ReadOptions ra;
    ra.readahead_blocks = 4;
    ASSERT_LILSM_OK(db->RangeLookup(ReadOptions(), keys[keys.size() / 2],
                                    200, &range_plain));
    ASSERT_LILSM_OK(
        db->RangeLookup(ra, keys[keys.size() / 2], 200, &range_ahead));
    EXPECT_EQ(range_plain.size(), 200u);
    EXPECT_EQ(range_plain, range_ahead);
  }
}

INSTANTIATE_TEST_SUITE_P(Formats, DbAsyncIoTest,
                         ::testing::Values(TableFormat::kSegmented,
                                           TableFormat::kBlocked));

// Level-granularity lookups (the paper's LevelModel axis) route through
// the same async branch with model-predicted bounds; results must stay
// bit-identical to the synchronous level-model path.
TEST(DbAsyncIoLevelModelTest, AsyncMultiGetMatchesSyncLevelGranularity) {
  ScratchDir dir("dbasync_level");
  const std::vector<Key> keys = RandomGapKeys(5000, 9);
  std::unique_ptr<DB> sync_db, async_db;
  DBOptions sync_opts = SmallOptions(1);
  DBOptions async_opts = SmallOptions(8);
  sync_opts.index_granularity = IndexGranularity::kLevel;
  async_opts.index_granularity = IndexGranularity::kLevel;
  ASSERT_LILSM_OK(DB::Open(sync_opts, dir.path() + "/sync", &sync_db));
  ASSERT_LILSM_OK(DB::Open(async_opts, dir.path() + "/async", &async_db));
  LoadAndCompact(sync_db.get(), keys);
  LoadAndCompact(async_db.get(), keys);

  ExpectMultiGetEquivalent(sync_db.get(), async_db.get(), keys, 77);
  EXPECT_GT(async_db->stats()->Count(Counter::kAsyncBatches), 0u);
}

// Default knobs (io_depth=1, readahead_blocks=0) must keep the read path
// exactly synchronous: no async/readahead counters move, and the SimEnv
// device-read accounting matches a DB opened before the knobs existed
// (i.e. with all-default options) to the exact read and byte count.
TEST(DbAsyncIoDefaultsTest, SyncDefaultsKeepExactReadCounts) {
  ScratchDir dir("dbasync_defaults");
  SimEnvOptions sim_options;
  sim_options.read_base_latency_ns = 0;  // count I/O, don't simulate it
  sim_options.read_per_byte_ns = 0.0;
  const std::vector<Key> keys = RandomGapKeys(4000, 11);

  uint64_t reads[2], bytes[2];
  for (int explicit_knobs = 0; explicit_knobs < 2; explicit_knobs++) {
    SimEnv env(Env::Default(), sim_options);
    DBOptions options = SmallOptions(1);
    if (explicit_knobs == 1) {
      options.io_depth = 1;  // Explicitly spelled-out defaults.
    }
    options.env = &env;
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(DB::Open(
        options, dir.path() + "/d" + std::to_string(explicit_knobs), &db));
    LoadAndCompact(db.get(), keys);

    env.io_stats()->Reset();
    std::string value;
    ReadOptions ropts;
    ropts.readahead_blocks = 0;
    for (size_t i = 0; i < keys.size(); i += 3) {
      ASSERT_LILSM_OK(db->Get(ropts, keys[i], &value));
    }
    std::vector<std::string> values;
    std::vector<Status> statuses;
    std::vector<Key> batch(keys.begin(), keys.begin() + 512);
    ASSERT_LILSM_OK(db->MultiGet(ropts, batch, &values, &statuses));
    auto iter = db->NewIterator(ropts);
    size_t n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
    ASSERT_LILSM_OK(iter->status());
    EXPECT_EQ(n, keys.size());
    reads[explicit_knobs] = env.io_stats()->random_reads.load();
    bytes[explicit_knobs] = env.io_stats()->random_read_bytes.load();

    EXPECT_EQ(db->stats()->Count(Counter::kAsyncBatches), 0u);
    EXPECT_EQ(db->stats()->Count(Counter::kAsyncReads), 0u);
    EXPECT_EQ(db->stats()->Count(Counter::kReadaheadHits), 0u);
    EXPECT_EQ(db->stats()->Count(Counter::kReadaheadWasted), 0u);
    EXPECT_EQ(db->stats()->TimerCount(Timer::kAsyncReap), 0u);
  }
  EXPECT_EQ(reads[0], reads[1]);
  EXPECT_EQ(bytes[0], bytes[1]);
}

// The perf claim under the deterministic queue model: a cold MultiGet
// sweep at io_depth=8 accrues strictly less modeled device wait than the
// identical sweep at io_depth=1 (overlapped reads cost max-per-wave, not
// sum), while returning the identical answers.
TEST(DbAsyncIoLatencyTest, BatchedColdReadsCostLessModeledLatency) {
  ScratchDir dir("dbasync_latency");
  const std::vector<Key> keys = RandomGapKeys(5000, 13);
  SimEnvOptions sim_options;  // Paper-calibrated defaults (~2.1us / 4KiB).

  uint64_t wait_ns[2];
  std::vector<std::string> answers[2];
  for (int depth8 = 0; depth8 < 2; depth8++) {
    SimEnv env(Env::Default(), sim_options);
    DBOptions options = SmallOptions(depth8 == 0 ? 1 : 8);
    options.env = &env;
    std::unique_ptr<DB> db;
    ASSERT_LILSM_OK(DB::Open(
        options, dir.path() + "/d" + std::to_string(depth8), &db));
    LoadAndCompact(db.get(), keys);

    env.io_stats()->Reset();
    Random rnd(5);
    std::vector<Key> batch;
    for (int j = 0; j < 1024; j++) {
      batch.push_back(keys[rnd.Uniform(keys.size())]);
    }
    std::vector<std::string> values;
    std::vector<Status> statuses;
    ASSERT_LILSM_OK(db->MultiGet(batch, &values, &statuses));
    for (size_t j = 0; j < batch.size(); j++) {
      ASSERT_LILSM_OK(statuses[j]);
      answers[depth8].push_back(std::move(values[j]));
    }
    wait_ns[depth8] = env.io_stats()->simulated_wait_ns.load();
  }
  EXPECT_EQ(answers[0], answers[1]);
  EXPECT_LT(wait_ns[1], wait_ns[0]);
}

}  // namespace
}  // namespace lilsm
