// SkipList: ordering, lookup, and iteration against std::set.
#include "lsm/skiplist.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace lilsm {
namespace {

struct U64Cmp {
  int operator()(uint64_t a, uint64_t b) const {
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
};

using List = SkipList<uint64_t, U64Cmp>;

TEST(SkipListTest, EmptyList) {
  Arena arena;
  List list(U64Cmp(), &arena);
  EXPECT_FALSE(list.Contains(10));
  List::Iterator iter(&list);
  iter.SeekToFirst();
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, InsertAndContains) {
  Arena arena;
  List list(U64Cmp(), &arena);
  std::set<uint64_t> model;
  Random rnd(1);
  for (int i = 0; i < 5000; i++) {
    const uint64_t key = rnd.Uniform(10000);
    if (model.insert(key).second) {
      list.Insert(key);
    }
  }
  for (uint64_t key = 0; key < 10000; key++) {
    ASSERT_EQ(list.Contains(key), model.count(key) > 0) << key;
  }
}

TEST(SkipListTest, IterationIsSorted) {
  Arena arena;
  List list(U64Cmp(), &arena);
  std::set<uint64_t> model;
  Random rnd(2);
  for (int i = 0; i < 3000; i++) {
    const uint64_t key = rnd.Next();
    if (model.insert(key).second) list.Insert(key);
  }
  List::Iterator iter(&list);
  auto it = model.begin();
  for (iter.SeekToFirst(); iter.Valid(); iter.Next(), ++it) {
    ASSERT_NE(it, model.end());
    ASSERT_EQ(iter.key(), *it);
  }
  EXPECT_EQ(it, model.end());
}

TEST(SkipListTest, SeekFindsLowerBound) {
  Arena arena;
  List list(U64Cmp(), &arena);
  std::set<uint64_t> model;
  Random rnd(3);
  for (int i = 0; i < 2000; i++) {
    const uint64_t key = rnd.Uniform(100000);
    if (model.insert(key).second) list.Insert(key);
  }
  List::Iterator iter(&list);
  for (int trial = 0; trial < 1000; trial++) {
    const uint64_t target = rnd.Uniform(110000);
    iter.Seek(target);
    auto expected = model.lower_bound(target);
    if (expected == model.end()) {
      EXPECT_FALSE(iter.Valid());
    } else {
      ASSERT_TRUE(iter.Valid());
      EXPECT_EQ(iter.key(), *expected);
    }
  }
}

}  // namespace
}  // namespace lilsm
