// Determinism and distribution sanity for the xorshift generator.
#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace lilsm {
namespace {

TEST(RandomTest, SameSeedSameSequence) {
  Random a(7), b(7);
  for (int i = 0; i < 1000; i++) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(7), b(8);
  int same = 0;
  for (int i = 0; i < 1000; i++) {
    if (a.Next() == b.Next()) same++;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rnd(11);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rnd.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformIsRoughlyFlat) {
  Random rnd(13);
  std::vector<int> buckets(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    buckets[rnd.Uniform(10)]++;
  }
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rnd(17);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    const double d = rnd.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Random rnd(19);
  double sum = 0, sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; i++) {
    const double g = rnd.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RandomTest, OneInApproximatesProbability) {
  Random rnd(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    if (rnd.OneIn(10)) hits++;
  }
  EXPECT_NEAR(hits, n / 10, n / 50);
}

}  // namespace
}  // namespace lilsm
